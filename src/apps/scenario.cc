#include "apps/scenario.hh"

#include <algorithm>

#include "apps/catalog.hh"
#include "apps/single_tier.hh"
#include "apps/social_network.hh"
#include "apps/swarm.hh"
#include "core/json.hh"
#include "core/logging.hh"
#include "fault/injector.hh"
#include "gen/topology.hh"
#include "serverless/platform.hh"
#include "workload/generators.hh"

namespace uqsim::apps {

namespace {

/** Golden-ratio stride: distinct shard seeds from one root seed. */
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ull;

/**
 * XORed into the workload seed to derive each arrival process's RNG
 * stream, so arrival draws never collide with the generator's own
 * query-mix/user draws from the same root seed.
 */
constexpr std::uint64_t kArrivalSeedTag = 0xa0761d6478bd642full;

std::string
ticksField(Tick t)
{
    return strCat(t, "ns");
}

bool
durationFromValue(const json::Value &v, Tick &out)
{
    std::string text;
    if (!json::scalarToString(v, text))
        return false;
    return fault::parseDuration(text, out);
}

/** Split a comma-separated name list, trimming blanks. */
std::vector<std::string>
splitNameList(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    auto flush = [&] {
        const auto b = cur.find_first_not_of(" \t");
        if (b == std::string::npos) {
            cur.clear();
            return;
        }
        const auto e = cur.find_last_not_of(" \t");
        out.push_back(cur.substr(b, e - b + 1));
        cur.clear();
    };
    for (char ch : text) {
        if (ch == ',')
            flush();
        else
            cur += ch;
    }
    flush();
    return out;
}

void
writeFault(json::Writer &w, const fault::FaultSpec &f)
{
    w.beginObject();
    w.field("kind", fault::faultKindName(f.kind));
    w.field("t", ticksField(f.start));
    w.field("dur", ticksField(f.duration));
    switch (f.kind) {
      case fault::FaultKind::Crash:
        w.field("service", f.service);
        if (f.role != fault::CrashRole::None) {
            w.field("group", f.instance);
            w.field("role", fault::crashRoleName(f.role));
        } else {
            w.field("instance", f.instance);
        }
        break;
      case fault::FaultKind::ErrorRate:
        w.field("service", f.service);
        w.field("rate", f.rate);
        break;
      case fault::FaultKind::Slowdown:
        w.field("server", f.server);
        w.field("factor", f.factor);
        break;
      case fault::FaultKind::Partition:
        w.field("a", strCat(f.groupA.first, "-", f.groupA.last));
        w.field("b", strCat(f.groupB.first, "-", f.groupB.last));
        w.field("loss", f.loss);
        break;
    }
    w.endObject();
}

} // namespace

bool
parseScenarioJson(const std::string &text, Scenario &out,
                  std::string &error)
{
    json::Value root;
    if (!json::parse(text, root, error))
        return false;
    if (!root.isObject()) {
        error = "scenario must be a JSON object";
        return false;
    }

    Scenario s = out; // absent keys keep the caller's defaults

    auto wantNumber = [&](const json::Value &v, const std::string &key,
                          double &dst) {
        if (!v.isNumber()) {
            error = strCat("scenario key '", key, "' must be a number");
            return false;
        }
        dst = v.number;
        return true;
    };
    auto wantUnsigned = [&](const json::Value &v, const std::string &key,
                            std::uint64_t &dst) {
        if (!v.isNumber() || v.number < 0.0 ||
            v.number != static_cast<double>(
                            static_cast<std::uint64_t>(v.number))) {
            error = strCat("scenario key '", key,
                           "' must be a non-negative integer");
            return false;
        }
        dst = static_cast<std::uint64_t>(v.number);
        return true;
    };
    auto wantString = [&](const json::Value &v, const std::string &key,
                          std::string &dst) {
        if (!v.isString()) {
            error = strCat("scenario key '", key, "' must be a string");
            return false;
        }
        dst = v.string;
        return true;
    };
    auto wantBool = [&](const json::Value &v, const std::string &key,
                        bool &dst) {
        if (!v.isBool()) {
            error = strCat("scenario key '", key, "' must be a boolean");
            return false;
        }
        dst = v.boolean;
        return true;
    };
    auto wantDuration = [&](const json::Value &v, const std::string &key,
                            Tick &dst) {
        if (!durationFromValue(v, dst)) {
            error = strCat("scenario key '", key,
                           "' must be a duration (e.g. \"50ms\")");
            return false;
        }
        return true;
    };

    for (const auto &kv : root.object) {
        const std::string &key = kv.first;
        const json::Value &v = kv.second;
        std::uint64_t u = 0;
        bool ok = true;
        if (key == "app")
            ok = wantString(v, key, s.app);
        else if (key == "qps")
            ok = wantNumber(v, key, s.qps);
        else if (key == "duration_sec")
            ok = wantNumber(v, key, s.durationSec);
        else if (key == "warmup_sec")
            ok = wantNumber(v, key, s.warmupSec);
        else if (key == "servers") {
            if ((ok = wantUnsigned(v, key, u)))
                s.servers = static_cast<unsigned>(u);
        } else if (key == "drones") {
            if ((ok = wantUnsigned(v, key, u)))
                s.drones = static_cast<unsigned>(u);
        } else if (key == "core")
            ok = wantString(v, key, s.core);
        else if (key == "freq_mhz")
            ok = wantNumber(v, key, s.freqMhz);
        else if (key == "fpga")
            ok = wantBool(v, key, s.fpga);
        else if (key == "lambda")
            ok = wantString(v, key, s.lambda);
        else if (key == "slow_servers") {
            if ((ok = wantUnsigned(v, key, u)))
                s.slowServers = static_cast<unsigned>(u);
        } else if (key == "slow_factor")
            ok = wantNumber(v, key, s.slowFactor);
        else if (key == "skew")
            ok = wantNumber(v, key, s.skew);
        else if (key == "users")
            ok = wantUnsigned(v, key, s.users);
        else if (key == "seed")
            ok = wantUnsigned(v, key, s.seed);
        else if (key == "shards") {
            if ((ok = wantUnsigned(v, key, u)))
                s.shards = static_cast<unsigned>(u);
        } else if (key == "threads") {
            if ((ok = wantUnsigned(v, key, u)))
                s.threads = static_cast<unsigned>(u);
        } else if (key == "rpc_timeout")
            ok = wantDuration(v, key, s.rpcTimeout);
        else if (key == "deadline")
            ok = wantDuration(v, key, s.deadline);
        else if (key == "retries") {
            if ((ok = wantUnsigned(v, key, u)))
                s.retries = static_cast<unsigned>(u);
        } else if (key == "retry_budget")
            ok = wantNumber(v, key, s.retryBudget);
        else if (key == "breaker")
            ok = wantBool(v, key, s.breaker);
        else if (key == "shed") {
            if ((ok = wantUnsigned(v, key, u)))
                s.shed = static_cast<unsigned>(u);
        } else if (key == "trace_capacity") {
            if ((ok = wantUnsigned(v, key, u)))
                s.traceCapacity = static_cast<std::size_t>(u);
        } else if (key == "data") {
            if (!v.isObject()) {
                error = "scenario key 'data' must be an object";
                return false;
            }
            for (const auto &dkv : v.object) {
                const std::string dkey = "data." + dkv.first;
                const json::Value &dv = dkv.second;
                bool dok = true;
                if (dkv.first == "keys")
                    dok = wantUnsigned(dv, dkey, s.dataKeys);
                else if (dkv.first == "capacity")
                    dok = wantUnsigned(dv, dkey, s.dataCapacity);
                else if (dkv.first == "policy")
                    dok = wantString(dv, dkey, s.dataPolicy);
                else if (dkv.first == "popularity")
                    dok = wantString(dv, dkey, s.dataPopularity);
                else if (dkv.first == "zipf_s")
                    dok = wantNumber(dv, dkey, s.dataZipfS);
                else if (dkv.first == "hot_fraction")
                    dok = wantNumber(dv, dkey, s.dataHotFraction);
                else if (dkv.first == "hot_mass")
                    dok = wantNumber(dv, dkey, s.dataHotMass);
                else if (dkv.first == "ttl")
                    dok = wantDuration(dv, dkey, s.dataTtl);
                else if (dkv.first == "write")
                    dok = wantString(dv, dkey, s.dataWrite);
                else if (dkv.first == "shift_period")
                    dok = wantDuration(dv, dkey, s.dataShiftPeriod);
                else if (dkv.first == "vnodes") {
                    if ((dok = wantUnsigned(dv, dkey, u)))
                        s.dataVnodes = static_cast<unsigned>(u);
                } else {
                    error = strCat("unknown scenario key 'data.",
                                   dkv.first, "'");
                    return false;
                }
                if (!dok)
                    return false;
            }
        } else if (key == "qos") {
            if (!v.isObject()) {
                error = "scenario key 'qos' must be an object";
                return false;
            }
            for (const auto &qkv : v.object) {
                const std::string qkey = "qos." + qkv.first;
                const json::Value &qv = qkv.second;
                bool qok = true;
                if (qkv.first == "enabled")
                    qok = wantBool(qv, qkey, s.qosEnabled);
                else if (qkv.first == "weights") {
                    std::string triple;
                    if ((qok = wantString(qv, qkey, triple)) &&
                        !parseQosWeights(triple, s.qosWeightUser,
                                         s.qosWeightBatch,
                                         s.qosWeightBest)) {
                        error = strCat(
                            "scenario key 'qos.weights' must be three "
                            "positive integers \"user,batch,best\", "
                            "got '",
                            triple, "'");
                        return false;
                    }
                } else if (qkv.first == "queue") {
                    if ((qok = wantUnsigned(qv, qkey, u)))
                        s.qosQueue = static_cast<unsigned>(u);
                } else if (qkv.first == "rate")
                    qok = wantNumber(qv, qkey, s.qosRate);
                else if (qkv.first == "burst")
                    qok = wantNumber(qv, qkey, s.qosBurst);
                else if (qkv.first == "shed_batch")
                    qok = wantNumber(qv, qkey, s.qosShedBatch);
                else if (qkv.first == "shed_best")
                    qok = wantNumber(qv, qkey, s.qosShedBest);
                else if (qkv.first == "batch")
                    qok = wantString(qv, qkey, s.qosBatch);
                else if (qkv.first == "best_effort")
                    qok = wantString(qv, qkey, s.qosBestEffort);
                else {
                    error = strCat("unknown scenario key 'qos.",
                                   qkv.first, "'");
                    return false;
                }
                if (!qok)
                    return false;
            }
        } else if (key == "replication") {
            if (!v.isObject()) {
                error = "scenario key 'replication' must be an object";
                return false;
            }
            for (const auto &rkv : v.object) {
                const std::string rkey = "replication." + rkv.first;
                const json::Value &rv = rkv.second;
                bool rok = true;
                if (rkv.first == "factor") {
                    if ((rok = wantUnsigned(rv, rkey, u)))
                        s.replicaFactor = static_cast<unsigned>(u);
                } else if (rkv.first == "quorum") {
                    if ((rok = wantUnsigned(rv, rkey, u)))
                        s.replicaQuorum = static_cast<unsigned>(u);
                } else if (rkv.first == "apply_lag")
                    rok = wantDuration(rv, rkey, s.replicaApplyLag);
                else if (rkv.first == "election_timeout")
                    rok = wantDuration(rv, rkey,
                                       s.replicaElectionTimeout);
                else if (rkv.first == "catch_up")
                    rok = wantDuration(rv, rkey, s.replicaCatchUp);
                else if (rkv.first == "read")
                    rok = wantString(rv, rkey, s.replicaRead);
                else if (rkv.first == "txn_keys") {
                    if ((rok = wantUnsigned(rv, rkey, u)))
                        s.txnKeys = static_cast<unsigned>(u);
                } else if (rkv.first == "txn_prepare_timeout")
                    rok = wantDuration(rv, rkey, s.txnPrepareTimeout);
                else {
                    error = strCat("unknown scenario key 'replication.",
                                   rkv.first, "'");
                    return false;
                }
                if (!rok)
                    return false;
            }
        } else if (key == "slo") {
            if (!v.isObject()) {
                error = "scenario key 'slo' must be an object";
                return false;
            }
            for (const auto &okv : v.object) {
                const std::string okey = "slo." + okv.first;
                const json::Value &ov = okv.second;
                bool ook = true;
                if (okv.first == "enabled")
                    ook = wantBool(ov, okey, s.obsEnabled);
                else if (okv.first == "interval")
                    ook = wantDuration(ov, okey, s.obsInterval);
                else if (okv.first == "ring")
                    ook = wantUnsigned(ov, okey, s.obsRing);
                else if (okv.first == "latency")
                    ook = wantDuration(ov, okey, s.sloLatency);
                else if (okv.first == "quantile")
                    ook = wantNumber(ov, okey, s.sloQuantile);
                else if (okv.first == "window") {
                    if ((ook = wantUnsigned(ov, okey, u)))
                        s.sloWindow = static_cast<unsigned>(u);
                } else if (okv.first == "error_rate")
                    ook = wantNumber(ov, okey, s.sloErrorRate);
                else if (okv.first == "tier")
                    ook = wantString(ov, okey, s.sloTier);
                else {
                    error = strCat("unknown scenario key 'slo.",
                                   okv.first, "'");
                    return false;
                }
                if (!ook)
                    return false;
            }
        } else if (key == "placement") {
            if (!v.isObject()) {
                error = "scenario key 'placement' must be an object";
                return false;
            }
            for (const auto &pkv : v.object) {
                const std::string pkey = "placement." + pkv.first;
                const json::Value &pv = pkv.second;
                if (pkv.first == "mode") {
                    if (!wantString(pv, pkey, s.placement))
                        return false;
                } else if (pkv.first == "pin") {
                    if (!pv.isArray()) {
                        error =
                            "scenario key 'placement.pin' must be an "
                            "array";
                        return false;
                    }
                    s.pins.clear();
                    for (const json::Value &entry : pv.array) {
                        if (!entry.isObject()) {
                            error = "placement.pin entries must be "
                                    "objects";
                            return false;
                        }
                        data::PlacementPin pin;
                        bool have_tier = false;
                        for (const auto &ekv : entry.object) {
                            const json::Value &ev = ekv.second;
                            if (ekv.first == "tier") {
                                if (!wantString(ev, "placement.pin.tier",
                                                pin.tier))
                                    return false;
                                have_tier = true;
                            } else if (ekv.first == "shard") {
                                if (!wantUnsigned(
                                        ev, "placement.pin.shard", u))
                                    return false;
                                pin.shard = static_cast<unsigned>(u);
                            } else {
                                error = strCat(
                                    "unknown scenario key "
                                    "'placement.pin.",
                                    ekv.first, "'");
                                return false;
                            }
                        }
                        if (!have_tier) {
                            error = "placement.pin entries need a "
                                    "'tier' name";
                            return false;
                        }
                        s.pins.push_back(std::move(pin));
                    }
                } else {
                    error = strCat("unknown scenario key 'placement.",
                                   pkv.first, "'");
                    return false;
                }
            }
        } else if (key == "generate") {
            if (!v.isObject()) {
                error = "scenario key 'generate' must be an object";
                return false;
            }
            for (const auto &gkv : v.object) {
                const std::string gkey = "generate." + gkv.first;
                const json::Value &gv = gkv.second;
                bool gok = true;
                if (gkv.first == "profile")
                    gok = wantString(gv, gkey, s.genProfile);
                else if (gkv.first == "seed")
                    gok = wantUnsigned(gv, gkey, s.genSeed);
                else if (gkv.first == "depth") {
                    if ((gok = wantUnsigned(gv, gkey, u)))
                        s.genDepth = static_cast<unsigned>(u);
                } else if (gkv.first == "width") {
                    if ((gok = wantUnsigned(gv, gkey, u)))
                        s.genWidth = static_cast<unsigned>(u);
                } else if (gkv.first == "fanout")
                    gok = wantNumber(gv, gkey, s.genFanout);
                else {
                    error = strCat("unknown scenario key 'generate.",
                                   gkv.first, "'");
                    return false;
                }
                if (!gok)
                    return false;
            }
        } else if (key == "arrival") {
            if (!v.isObject()) {
                error = "scenario key 'arrival' must be an object";
                return false;
            }
            for (const auto &akv : v.object) {
                const std::string akey = "arrival." + akv.first;
                const json::Value &av = akv.second;
                bool aok = true;
                if (akv.first == "kind")
                    aok = wantString(av, akey, s.arrival);
                else if (akv.first == "burst")
                    aok = wantNumber(av, akey, s.arrivalBurst);
                else if (akv.first == "duty")
                    aok = wantNumber(av, akey, s.arrivalDuty);
                else if (akv.first == "dwell")
                    aok = wantDuration(av, akey, s.arrivalDwell);
                else if (akv.first == "period")
                    aok = wantDuration(av, akey, s.arrivalPeriod);
                else if (akv.first == "low")
                    aok = wantNumber(av, akey, s.arrivalLow);
                else if (akv.first == "flash_at")
                    aok = wantDuration(av, akey, s.arrivalFlashAt);
                else if (akv.first == "flash_ramp")
                    aok = wantDuration(av, akey, s.arrivalFlashRamp);
                else if (akv.first == "flash_mult")
                    aok = wantNumber(av, akey, s.arrivalFlashMult);
                else if (akv.first == "flash_hold")
                    aok = wantDuration(av, akey, s.arrivalFlashHold);
                else {
                    error = strCat("unknown scenario key 'arrival.",
                                   akv.first, "'");
                    return false;
                }
                if (!aok)
                    return false;
            }
        } else if (key == "faults") {
            if (!v.isArray()) {
                error = "scenario key 'faults' must be an array";
                return false;
            }
            s.faults.clear();
            for (const json::Value &entry : v.array) {
                fault::FaultSpec spec;
                if (!fault::faultFromJson(entry, spec, error))
                    return false;
                s.faults.push_back(std::move(spec));
            }
        } else {
            error = strCat("unknown scenario key '", key, "'");
            return false;
        }
        if (!ok)
            return false;
    }

    // The same sanity rules uqsim_run enforces on flags.
    if (s.qps <= 0.0) {
        error = "qps must be positive";
        return false;
    }
    if (s.durationSec <= 0.0) {
        error = "duration_sec must be positive";
        return false;
    }
    if (s.warmupSec < 0.0) {
        error = "warmup_sec must be non-negative";
        return false;
    }
    if (s.servers == 0) {
        error = "servers must be positive";
        return false;
    }
    if (s.shards == 0 || s.threads == 0) {
        error = "shards and threads must be positive";
        return false;
    }
    if (s.skew >= 100.0) {
        error = "skew must be below 100";
        return false;
    }
    if (s.retryBudget < 0.0) {
        error = "retry_budget must be >= 0";
        return false;
    }
    if (!s.lambda.empty() && s.lambda != "s3" && s.lambda != "mem") {
        error = strCat("unknown lambda kind '", s.lambda,
                       "' (want s3 or mem)");
        return false;
    }
    cpu::CoreModel unused;
    if (!coreModelByName(s.core, unused)) {
        error = strCat("unknown core model '", s.core, "'");
        return false;
    }
    data::CachePolicy pol;
    if (!data::cachePolicyByName(s.dataPolicy, pol)) {
        error = strCat("unknown data.policy '", s.dataPolicy,
                       "' (want lru, lfu or slru)");
        return false;
    }
    data::Popularity pop;
    if (!data::popularityByName(s.dataPopularity, pop)) {
        error = strCat("unknown data.popularity '", s.dataPopularity,
                       "' (want zipf, uniform or hotspot)");
        return false;
    }
    data::WritePolicy wp;
    if (!data::writePolicyByName(s.dataWrite, wp)) {
        error = strCat("unknown data.write '", s.dataWrite,
                       "' (want through or invalidate)");
        return false;
    }
    if (s.dataKeys > 0 && s.dataCapacity == 0) {
        error = "data.capacity must be positive when data.keys is set";
        return false;
    }
    if (s.dataZipfS < 0.0) {
        error = "data.zipf_s must be >= 0";
        return false;
    }
    if (s.dataHotFraction <= 0.0 || s.dataHotFraction > 1.0) {
        error = "data.hot_fraction must be in (0, 1]";
        return false;
    }
    if (s.dataHotMass < 0.0 || s.dataHotMass > 1.0) {
        error = "data.hot_mass must be in [0, 1]";
        return false;
    }
    if (s.dataVnodes == 0) {
        error = "data.vnodes must be positive";
        return false;
    }
    if (s.qosWeightUser == 0 || s.qosWeightBatch == 0 ||
        s.qosWeightBest == 0) {
        error = "qos.weights must all be >= 1";
        return false;
    }
    if (s.qosRate < 0.0) {
        error = "qos.rate must be >= 0";
        return false;
    }
    if (s.qosBurst <= 0.0) {
        error = "qos.burst must be positive";
        return false;
    }
    if (s.qosShedBatch <= 0.0 || s.qosShedBatch > 1.0) {
        error = "qos.shed_batch must be in (0, 1]";
        return false;
    }
    if (s.qosShedBest <= 0.0 || s.qosShedBest > 1.0) {
        error = "qos.shed_best must be in (0, 1]";
        return false;
    }
    replica::ReadPreference rp;
    if (!replica::readPreferenceByName(s.replicaRead, rp)) {
        error = strCat("unknown replication.read '", s.replicaRead,
                       "' (want leader, nearest or ryw)");
        return false;
    }
    if (s.replicaFactor >= 2 && s.dataKeys == 0) {
        error = "replication.factor needs data.keys > 0";
        return false;
    }
    if (s.replicaFactor == 1) {
        error = "replication.factor must be 0 (off) or >= 2";
        return false;
    }
    if (s.replicaQuorum > s.replicaFactor) {
        error = "replication.quorum must be <= replication.factor";
        return false;
    }
    if (s.txnKeys == 1) {
        error = "replication.txn_keys must be 0 (off) or >= 2";
        return false;
    }
    if (s.txnKeys >= 2 && s.replicaFactor < 2) {
        error = "replication.txn_keys needs replication.factor >= 2";
        return false;
    }
    if (s.replicaFactor >= 2 && s.replicaApplyLag == 0) {
        error = "replication.apply_lag must be positive";
        return false;
    }
    if (s.replicaFactor >= 2 && s.replicaElectionTimeout == 0) {
        error = "replication.election_timeout must be positive";
        return false;
    }
    if (s.txnKeys >= 2 && s.txnPrepareTimeout == 0) {
        error = "replication.txn_prepare_timeout must be positive";
        return false;
    }
    if (s.obsInterval == 0) {
        error = "slo.interval must be positive";
        return false;
    }
    if (s.obsRing == 0) {
        error = "slo.ring must be positive";
        return false;
    }
    if (s.sloQuantile <= 0.0 || s.sloQuantile >= 1.0) {
        error = "slo.quantile must be in (0, 1)";
        return false;
    }
    if (s.sloWindow == 0) {
        error = "slo.window must be positive";
        return false;
    }
    if (s.sloErrorRate < 0.0 || s.sloErrorRate > 1.0) {
        error = "slo.error_rate must be in [0, 1]";
        return false;
    }
    if (s.placement != "none" && s.placement != "replicate" &&
        s.placement != "partition") {
        error = strCat("unknown placement.mode '", s.placement,
                       "' (want none, replicate or partition)");
        return false;
    }
    if (!s.pins.empty() && s.placement != "partition") {
        error = "placement.pin needs placement.mode 'partition'";
        return false;
    }
    if (s.placement == "partition") {
        // Partitioning splits ONE world across shards; features that
        // assume either replica worlds or whole-world ownership of the
        // fault/offload machinery are rejected rather than silently
        // mis-modelled.
        if (!s.faults.empty()) {
            error = "placement 'partition' does not support faults";
            return false;
        }
        if (s.replicaFactor >= 2) {
            error =
                "placement 'partition' does not support replication";
            return false;
        }
        if (s.fpga) {
            error = "placement 'partition' does not support fpga";
            return false;
        }
        if (!s.lambda.empty()) {
            error =
                "placement 'partition' does not support lambda tiers";
            return false;
        }
        if (s.app.rfind("swarm-", 0) == 0) {
            error = strCat("placement 'partition' does not support "
                           "app '",
                           s.app, "'");
            return false;
        }
        for (const data::PlacementPin &pin : s.pins) {
            if (pin.shard >= s.shards) {
                error = strCat("placement pin '", pin.tier,
                               "' targets shard ", pin.shard,
                               " but only ", s.shards, " shards exist");
                return false;
            }
        }
        for (std::size_t i = 0; i < s.pins.size(); ++i)
            for (std::size_t j = 0; j < i; ++j)
                if (s.pins[i].tier == s.pins[j].tier) {
                    error = strCat("duplicate placement pin for tier '",
                                   s.pins[i].tier, "'");
                    return false;
                }
    }
    if (!s.genProfile.empty() &&
        gen::genProfileByName(s.genProfile) == nullptr) {
        error = strCat("unknown generate.profile '", s.genProfile,
                       "' (try --list-gen-profiles)");
        return false;
    }
    if (s.genProfile.empty() &&
        (s.genDepth != 0 || s.genWidth != 0 || s.genFanout != 0.0)) {
        error = "generate.depth/width/fanout need generate.profile";
        return false;
    }
    if (s.genDepth > 8) {
        error = "generate.depth must be <= 8";
        return false;
    }
    if (s.genWidth > 8) {
        error = "generate.width must be <= 8";
        return false;
    }
    if (s.genFanout < 0.0 || s.genFanout > 8.0) {
        error = "generate.fanout must be in [0, 8]";
        return false;
    }
    workload::ArrivalKind arrival_kind;
    if (!workload::arrivalKindByName(s.arrival, arrival_kind)) {
        error = strCat("unknown arrival.kind '", s.arrival,
                       "' (want poisson, mmpp, diurnal or flash)");
        return false;
    }
    if (s.arrivalBurst < 1.0) {
        error = "arrival.burst must be >= 1";
        return false;
    }
    if (s.arrivalDuty <= 0.0 || s.arrivalDuty >= 1.0) {
        error = "arrival.duty must be in (0, 1)";
        return false;
    }
    if (s.arrivalDwell == 0) {
        error = "arrival.dwell must be positive";
        return false;
    }
    if (s.arrivalPeriod == 0) {
        error = "arrival.period must be positive";
        return false;
    }
    if (s.arrivalLow <= 0.0 || s.arrivalLow > 1.0) {
        error = "arrival.low must be in (0, 1]";
        return false;
    }
    if (s.arrivalFlashMult < 1.0) {
        error = "arrival.flash_mult must be >= 1";
        return false;
    }
    if (s.arrivalFlashRamp == 0) {
        error = "arrival.flash_ramp must be positive";
        return false;
    }

    out = std::move(s);
    return true;
}

std::string
scenarioToJson(const Scenario &s)
{
    json::Writer w;
    w.beginObject();
    w.field("app", s.app);
    w.field("qps", s.qps);
    w.field("duration_sec", s.durationSec);
    w.field("warmup_sec", s.warmupSec);
    w.field("servers", s.servers);
    w.field("drones", s.drones);
    w.field("core", s.core);
    w.field("freq_mhz", s.freqMhz);
    w.field("fpga", s.fpga);
    w.field("lambda", s.lambda);
    w.field("slow_servers", s.slowServers);
    w.field("slow_factor", s.slowFactor);
    w.field("skew", s.skew);
    w.field("users", s.users);
    w.field("seed", s.seed);
    w.field("shards", s.shards);
    w.field("threads", s.threads);
    w.field("rpc_timeout", ticksField(s.rpcTimeout));
    w.field("deadline", ticksField(s.deadline));
    w.field("retries", s.retries);
    w.field("retry_budget", s.retryBudget);
    w.field("breaker", s.breaker);
    w.field("shed", s.shed);
    w.field("trace_capacity",
            static_cast<std::uint64_t>(s.traceCapacity));
    w.beginObject("data");
    w.field("keys", s.dataKeys);
    w.field("capacity", s.dataCapacity);
    w.field("policy", s.dataPolicy);
    w.field("popularity", s.dataPopularity);
    w.field("zipf_s", s.dataZipfS);
    w.field("hot_fraction", s.dataHotFraction);
    w.field("hot_mass", s.dataHotMass);
    w.field("ttl", ticksField(s.dataTtl));
    w.field("write", s.dataWrite);
    w.field("shift_period", ticksField(s.dataShiftPeriod));
    w.field("vnodes", s.dataVnodes);
    w.endObject();
    w.beginObject("qos");
    w.field("enabled", s.qosEnabled);
    w.field("weights", strCat(s.qosWeightUser, ",", s.qosWeightBatch,
                              ",", s.qosWeightBest));
    w.field("queue", s.qosQueue);
    w.field("rate", s.qosRate);
    w.field("burst", s.qosBurst);
    w.field("shed_batch", s.qosShedBatch);
    w.field("shed_best", s.qosShedBest);
    w.field("batch", s.qosBatch);
    w.field("best_effort", s.qosBestEffort);
    w.endObject();
    w.beginObject("replication");
    w.field("factor", s.replicaFactor);
    w.field("quorum", s.replicaQuorum);
    w.field("apply_lag", ticksField(s.replicaApplyLag));
    w.field("election_timeout", ticksField(s.replicaElectionTimeout));
    w.field("catch_up", ticksField(s.replicaCatchUp));
    w.field("read", s.replicaRead);
    w.field("txn_keys", s.txnKeys);
    w.field("txn_prepare_timeout", ticksField(s.txnPrepareTimeout));
    w.endObject();
    w.beginObject("slo");
    w.field("enabled", s.obsEnabled);
    w.field("interval", ticksField(s.obsInterval));
    w.field("ring", s.obsRing);
    w.field("latency", ticksField(s.sloLatency));
    w.field("quantile", s.sloQuantile);
    w.field("window", s.sloWindow);
    w.field("error_rate", s.sloErrorRate);
    w.field("tier", s.sloTier);
    w.endObject();
    w.beginObject("placement");
    w.field("mode", s.placement);
    w.beginArray("pin");
    for (const data::PlacementPin &p : s.pins) {
        w.beginObject();
        w.field("tier", p.tier);
        w.field("shard", p.shard);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.beginObject("generate");
    w.field("profile", s.genProfile);
    w.field("seed", s.genSeed);
    w.field("depth", s.genDepth);
    w.field("width", s.genWidth);
    w.field("fanout", s.genFanout);
    w.endObject();
    w.beginObject("arrival");
    w.field("kind", s.arrival);
    w.field("burst", s.arrivalBurst);
    w.field("duty", s.arrivalDuty);
    w.field("dwell", ticksField(s.arrivalDwell));
    w.field("period", ticksField(s.arrivalPeriod));
    w.field("low", s.arrivalLow);
    w.field("flash_at", ticksField(s.arrivalFlashAt));
    w.field("flash_ramp", ticksField(s.arrivalFlashRamp));
    w.field("flash_mult", s.arrivalFlashMult);
    w.field("flash_hold", ticksField(s.arrivalFlashHold));
    w.endObject();
    w.beginArray("faults");
    for (const fault::FaultSpec &f : s.faults)
        writeFault(w, f);
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

bool
coreModelByName(const std::string &name, cpu::CoreModel &out)
{
    if (name == "xeon")
        out = cpu::CoreModel::xeon();
    else if (name == "xeon18")
        out = cpu::CoreModel::xeonAt1800();
    else if (name == "thunderx")
        out = cpu::CoreModel::thunderx();
    else
        return false;
    return true;
}

data::DataTierConfig
dataTierConfigFor(const Scenario &s)
{
    data::DataTierConfig c;
    c.keyspace.keys = s.dataKeys;
    if (!data::popularityByName(s.dataPopularity, c.keyspace.popularity))
        fatal(strCat("unknown data popularity '", s.dataPopularity, "'"));
    c.keyspace.zipfS = s.dataZipfS;
    c.keyspace.hotFraction = s.dataHotFraction;
    c.keyspace.hotMass = s.dataHotMass;
    c.keyspace.shiftPeriod = s.dataShiftPeriod;
    c.cache.capacity = s.dataCapacity;
    if (!data::cachePolicyByName(s.dataPolicy, c.cache.policy))
        fatal(strCat("unknown data policy '", s.dataPolicy, "'"));
    if (!data::writePolicyByName(s.dataWrite, c.cache.write))
        fatal(strCat("unknown data write policy '", s.dataWrite, "'"));
    c.cache.ttl = s.dataTtl;
    c.vnodes = s.dataVnodes;
    return c;
}

replica::ReplicationConfig
replicationConfigFor(const Scenario &s)
{
    replica::ReplicationConfig c;
    c.factor = s.replicaFactor;
    c.writeQuorum = s.replicaQuorum;
    c.applyLag = s.replicaApplyLag;
    c.electionTimeout = s.replicaElectionTimeout;
    c.catchUp = s.replicaCatchUp;
    if (!replica::readPreferenceByName(s.replicaRead, c.readPreference))
        fatal(strCat("unknown read preference '", s.replicaRead, "'"));
    c.txnKeys = s.txnKeys;
    c.txnPrepareTimeout = s.txnPrepareTimeout;
    return c;
}

bool
parseQosWeights(const std::string &text, unsigned &user,
                unsigned &batch, unsigned &best)
{
    const std::vector<std::string> parts = splitNameList(text);
    if (parts.size() != 3)
        return false;
    unsigned vals[3];
    for (int i = 0; i < 3; ++i) {
        const std::string &p = parts[i];
        if (p.empty() ||
            p.find_first_not_of("0123456789") != std::string::npos)
            return false;
        const unsigned long v = std::stoul(p);
        if (v == 0 || v > 1000000)
            return false;
        vals[i] = static_cast<unsigned>(v);
    }
    user = vals[0];
    batch = vals[1];
    best = vals[2];
    return true;
}

service::QosConfig
qosConfigFor(const Scenario &s)
{
    service::QosConfig c;
    c.policy.enabled = true;
    c.policy.weights = {s.qosWeightUser, s.qosWeightBatch,
                        s.qosWeightBest};
    c.policy.classQueueCapacity = s.qosQueue;
    c.policy.ratePerInstance = s.qosRate;
    c.policy.burst = s.qosBurst;
    c.policy.shedAt = {1.0, s.qosShedBatch, s.qosShedBest};
    c.batchQueries = splitNameList(s.qosBatch);
    c.bestEffortQueries = splitNameList(s.qosBestEffort);
    return c;
}

workload::ArrivalConfig
arrivalConfigFor(const Scenario &s)
{
    workload::ArrivalConfig c;
    if (!workload::arrivalKindByName(s.arrival, c.kind))
        fatal(strCat("unknown arrival kind '", s.arrival, "'"));
    c.burst = s.arrivalBurst;
    c.duty = s.arrivalDuty;
    c.dwell = s.arrivalDwell;
    c.period = s.arrivalPeriod;
    c.low = s.arrivalLow;
    c.flashAt = s.arrivalFlashAt;
    c.flashRamp = s.arrivalFlashRamp;
    c.flashMult = s.arrivalFlashMult;
    c.flashHold = s.arrivalFlashHold;
    return c;
}

obs::PipelineConfig
obsConfigFor(const Scenario &s)
{
    obs::PipelineConfig c;
    c.interval = s.obsInterval;
    c.ring = static_cast<std::size_t>(s.obsRing);
    c.slo.tier = s.sloTier;
    c.slo.latency = s.sloLatency;
    c.slo.quantile = s.sloQuantile;
    c.slo.window = s.sloWindow;
    c.slo.errorRate = s.sloErrorRate;
    return c;
}

std::unique_ptr<obs::Pipeline>
attachObservability(World &w, const Scenario &s)
{
    // Arming an SLO objective implies telemetry: the monitor cannot
    // run without the sampler feeding it.
    const bool enabled =
        s.obsEnabled || s.sloLatency > 0 || s.sloErrorRate > 0.0;
    if (!enabled)
        return nullptr;
    auto p = std::make_unique<obs::Pipeline>(*w.app, obsConfigFor(s));
    p->start();
    return p;
}

WorldConfig
worldConfigFor(const Scenario &s)
{
    WorldConfig config;
    config.workerServers = s.servers;
    if (!coreModelByName(s.core, config.coreModel))
        fatal(strCat("unknown core model '", s.core, "'"));
    config.seed = s.seed;
    config.appConfig.traceCapacity = s.traceCapacity;
    if (s.fpga)
        config.appConfig.fpga = net::FpgaOffloadModel::on();
    return config;
}

void
buildScenarioApp(World &w, const Scenario &s)
{
    // A generate block replaces the hand-written app with a sampled
    // topology; every opt-in layer below composes with it unchanged.
    if (!s.genProfile.empty()) {
        const gen::GenProfile *p = gen::genProfileByName(s.genProfile);
        if (p == nullptr)
            fatal(strCat("unknown gen profile '", s.genProfile,
                         "' (try --list-gen-profiles)"));
        gen::GenOverrides ov;
        ov.depth = s.genDepth;
        ov.width = s.genWidth;
        ov.fanout = s.genFanout;
        gen::buildGeneratedApp(w,
                               gen::sampleTopology(*p, s.genSeed, ov));

        if (s.dataKeys > 0)
            w.app->enableKeyedData(dataTierConfigFor(s));
        if (s.replicaFactor >= 2)
            w.app->enableReplication(replicationConfigFor(s));
        if (s.qosEnabled)
            w.app->enableQos(qosConfigFor(s));
        return;
    }

    const std::string &n = s.app;
    SwarmOptions so;
    so.drones = s.drones;
    if (n == "social-network")
        buildSocialNetwork(w);
    else if (n == "social-monolith")
        buildSocialNetworkMonolith(w);
    else if (n == "media")
        buildApp(w, AppId::MediaService);
    else if (n == "ecommerce")
        buildApp(w, AppId::Ecommerce);
    else if (n == "banking")
        buildApp(w, AppId::Banking);
    else if (n == "swarm-cloud")
        buildSwarm(w, SwarmVariant::Cloud, so);
    else if (n == "swarm-edge")
        buildSwarm(w, SwarmVariant::Edge, so);
    else if (n == "nginx")
        buildSingleTier(w, SingleTierKind::Nginx);
    else if (n == "memcached")
        buildSingleTier(w, SingleTierKind::Memcached);
    else if (n == "mongodb")
        buildSingleTier(w, SingleTierKind::MongoDB);
    else if (n == "xapian")
        buildSingleTier(w, SingleTierKind::Xapian);
    else if (n == "recommender")
        buildSingleTier(w, SingleTierKind::Recommender);
    else
        fatal(strCat("unknown app '", n, "' (try --list)"));

    // The keyed data tier is strictly opt-in: without keys the build
    // above is byte-identical to every pre-data-tier scenario.
    if (s.dataKeys > 0)
        w.app->enableKeyedData(dataTierConfigFor(s));

    // Replica groups layer on top of the keyed tier — and are just as
    // strictly opt-in (factor < 2 leaves no replica state behind).
    if (s.replicaFactor >= 2)
        w.app->enableReplication(replicationConfigFor(s));

    // So is admission control: without a qos block no class queues
    // exist and execution matches the legacy single-FIFO digest.
    if (s.qosEnabled)
        w.app->enableQos(qosConfigFor(s));
}

WorldHandle::WorldHandle(const WorldConfig &base, unsigned shards,
                         unsigned threads, Deployment deployment)
    : deployment_(deployment),
      // Partitioned shards exchange messages whose minimum delay is
      // the wire latency, so that is the engine's conservative
      // lookahead. Replica worlds (and any one-shard deployment)
      // never talk across shards: unbounded.
      engine_({shards,
               deployment == Deployment::Partition && shards > 1
                   ? base.netConfig.wireLatency
                   : kMaxTick,
               threads})
{
    worlds_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
        WorldConfig config = base;
        // Replicas are N distinct experiments (stride-derived seeds);
        // a partition is ONE world, so every shard must draw the
        // identical construction randomness.
        config.seed = deployment == Deployment::Partition
                          ? base.seed
                          : shardSeed(base.seed, i);
        worlds_.push_back(
            std::make_unique<World>(config, engine_.context(i)));
    }
}

void
WorldHandle::enablePartition(const std::vector<data::PlacementPin> &pins)
{
    if (deployment_ != Deployment::Partition)
        fatal("enablePartition on a non-partition deployment");

    const World &w0 = *worlds_[0];
    std::vector<std::string> tiers;
    tiers.reserve(w0.app->services().size());
    for (const service::Microservice *svc : w0.app->services())
        tiers.push_back(svc->name());

    // Cross-shard calls address tiers by service-order index, so every
    // shard must have built the identical graph.
    for (unsigned i = 1; i < shards(); ++i) {
        const auto &svcs = worlds_[i]->app->services();
        if (svcs.size() != tiers.size())
            fatal("partitioned shards built different graphs");
        for (std::size_t t = 0; t < tiers.size(); ++t)
            if (svcs[t]->name() != tiers[t])
                fatal("partitioned shards built different graphs");
    }

    std::map<std::string, unsigned> homes;
    std::string error;
    if (!data::assignPlacement(tiers, w0.app->entry(), shards(), pins,
                               homes, error))
        fatal(error);

    std::vector<service::App *> peers;
    peers.reserve(shards());
    for (unsigned i = 0; i < shards(); ++i)
        peers.push_back(worlds_[i]->app.get());
    for (unsigned i = 0; i < shards(); ++i)
        worlds_[i]->app->enablePartition(peers, homes);
}

std::uint64_t
WorldHandle::shardSeed(std::uint64_t seed, unsigned shard)
{
    return seed + shard * kSeedStride;
}

workload::LoadResult
runWorld(WorldHandle &w, const LoadSpec &spec)
{
    const unsigned shards = w.shards();
    const bool partitioned = w.deployment() == Deployment::Partition;
    ParallelSimulator &engine = w.engine();

    // Replicate: per-shard generators, each shard an independent
    // replica fed its slice of the offered load with a shard-derived
    // workload seed. Construction/start order mirrors
    // workload::runLoad() so the one-shard call sequence (and digest)
    // is unchanged.
    //
    // Partition: one generator on shard 0 — the world's single entry
    // point — at the full rate with the plain seed; handler work lands
    // on whichever shard each tier calls home.
    std::vector<std::unique_ptr<workload::OpenLoopGenerator>> gens;
    const unsigned gen_shards = partitioned ? 1u : shards;
    gens.reserve(gen_shards);
    for (unsigned i = 0; i < gen_shards; ++i) {
        service::App &app = *w.shard(i).app;
        const std::uint64_t gen_seed =
            partitioned ? spec.seed : WorldHandle::shardSeed(spec.seed, i);
        const double gen_qps =
            partitioned ? spec.qps : spec.qps / shards;
        gens.push_back(std::make_unique<workload::OpenLoopGenerator>(
            app, workload::QueryMix::fromApp(app), spec.users,
            gen_seed));
        gens.back()->setQps(gen_qps);
        // The Poisson default attaches nothing: the generator keeps
        // drawing gaps from its own stream, bit-identical to every
        // pre-arrival-library run. Other processes get a disjoint
        // stream so only the arrival instants change.
        if (spec.arrival.kind != workload::ArrivalKind::Poisson)
            gens.back()->setArrivalProcess(
                workload::ArrivalProcess::make(
                    spec.arrival, gen_qps,
                    gen_seed ^ kArrivalSeedTag));
        gens.back()->start();
    }
    engine.runFor(spec.warmup);
    for (unsigned i = 0; i < shards; ++i)
        w.shard(i).app->statReset();
    engine.runFor(spec.measure);
    for (auto &gen : gens)
        gen->stop();
    // Bounded drain window, as in runLoad(): completions of arrivals
    // inside the window are kept; rates use the arrival window only.
    engine.runFor(spec.measure / 5);
    const double span_sec = ticksToSec(spec.measure);

    // Aggregate the measured window. Replicate sums end-to-end results
    // across all shards (with one shard every expression degenerates
    // to runLoad()'s own); a partition completes every request on the
    // injecting shard 0, remote per-tier work already folded back into
    // each request, so only shard 0 carries end-to-end numbers.
    // Utilization spans every shard's servers in both modes.
    workload::LoadResult r;
    r.offeredQps = spec.qps;
    Histogram latency;
    std::uint64_t within_qos = 0;
    double util_sum = 0.0, net_sum = 0.0, comp_sum = 0.0;
    const unsigned e2e_shards = partitioned ? 1u : shards;
    for (unsigned i = 0; i < e2e_shards; ++i) {
        service::App &app = *w.shard(i).app;
        r.completed += app.completed();
        r.dropped += app.droppedRequests();
        within_qos += app.completedWithinQos();
        latency.merge(app.endToEndLatency());
        const double n = static_cast<double>(app.completed());
        net_sum += app.meanNetworkTimePerRequest() * n;
        comp_sum += app.meanAppTimePerRequest() * n;
    }
    for (unsigned i = 0; i < shards; ++i)
        util_sum += w.shard(i).app->cluster().averageUtilization();
    r.p50 = latency.p50();
    r.p95 = latency.p95();
    r.p99 = latency.p99();
    r.meanMs = ticksToMs(static_cast<Tick>(latency.mean()));
    r.achievedQps =
        span_sec > 0.0 ? static_cast<double>(r.completed) / span_sec : 0.0;
    r.goodputQps = span_sec > 0.0
                       ? static_cast<double>(within_qos) / span_sec
                       : 0.0;
    r.meanUtilization = util_sum / std::max(1u, shards);
    r.networkShare =
        (net_sum + comp_sum) > 0.0 ? net_sum / (net_sum + comp_sum) : 0.0;
    return r;
}

ScenarioRunResult
runScenario(const Scenario &s)
{
    const WorldConfig config = worldConfigFor(s);
    const Deployment deployment = s.placement == "partition"
                                      ? Deployment::Partition
                                      : Deployment::Replicate;
    WorldHandle sharded(config, s.shards, s.threads, deployment);
    const unsigned nshards = sharded.shards();

    serverless::LambdaConfig lambda_cfg;
    if (!s.lambda.empty())
        lambda_cfg.stateStore =
            s.lambda == "s3" ? serverless::StateStoreKind::S3
                             : serverless::StateStoreKind::RemoteMemory;

    // Per-shard application order mirrors uqsim_run step for step, so
    // a headless sweep run reproduces the CLI's digest bit-for-bit.
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::vector<std::unique_ptr<obs::Pipeline>> pipelines;
    for (unsigned i = 0; i < nshards; ++i) {
        World &world = sharded.shard(i);
        buildScenarioApp(world, s);
        service::App &app = *world.app;

        if (!s.lambda.empty())
            serverless::LambdaPlatform::applyToApp(app, lambda_cfg,
                                                   world.cluster);
        if (s.freqMhz > 0.0)
            world.cluster.setAllFrequenciesMhz(s.freqMhz);
        if (s.slowServers > 0)
            world.cluster.injectSlowServers(s.slowServers,
                                            s.slowFactor);

        if (s.rpcTimeout || s.retries || s.breaker || s.shed) {
            for (service::Microservice *svc : app.services()) {
                rpc::ResiliencePolicy &pol =
                    svc->mutableDef().resilience;
                pol.timeout = s.rpcTimeout;
                if (s.retries) {
                    pol.retry.maxAttempts = s.retries + 1;
                    pol.retry.budgetRatio = s.retryBudget;
                }
                pol.breaker.enabled = s.breaker;
                pol.shedQueueLength = s.shed;
            }
        }
        if (s.deadline)
            app.setRequestDeadline(s.deadline);

        if (!s.faults.empty()) {
            auto injector = std::make_unique<fault::FaultInjector>(
                app, WorldHandle::shardSeed(s.seed, i));
            injector->addAll(s.faults);
            injector->arm();
            injectors.push_back(std::move(injector));
        }

        if (auto pipe = attachObservability(world, s))
            pipelines.push_back(std::move(pipe));
    }
    if (deployment == Deployment::Partition)
        sharded.enablePartition(s.pins);

    LoadSpec load;
    load.qps = s.qps;
    load.warmup = secToTicks(s.warmupSec);
    load.measure = secToTicks(s.durationSec);
    load.users =
        s.skew >= 0.0
            ? workload::UserPopulation::skewed(s.users, s.skew)
            : workload::UserPopulation::uniform(s.users);
    load.seed = s.seed + 1;
    load.arrival = arrivalConfigFor(s);

    ScenarioRunResult out;
    out.load = runWorld(sharded, load);
    out.digest = sharded.engine().executionDigest();
    out.events = sharded.engine().eventsExecuted();
    for (unsigned i = 0; i < nshards; ++i)
        out.failed += sharded.shard(i).app->failedRequests();
    return out;
}

} // namespace uqsim::apps
