/**
 * @file
 * The Media Service end-to-end application (Sec 3.3, Fig 5).
 *
 * Browsing movie information, reviewing, rating, renting and streaming
 * movies: 38 unique microservices. Movie metadata lives in a sharded
 * MySQL database (MovieDB), reviews in memcached+MongoDB, movie files
 * in NFS served by an nginx-hls streaming module; renting goes through
 * a payment-authentication step.
 */

#ifndef UQSIM_APPS_MEDIA_SERVICE_HH
#define UQSIM_APPS_MEDIA_SERVICE_HH

#include "apps/builder.hh"

namespace uqsim::apps {

/** Query-type indices registered by buildMediaService. */
struct MediaServiceQueries
{
    unsigned browseMovie = 0;
    unsigned composeReview = 0;
    unsigned rentMovie = 0;
    unsigned streamMovie = 0;
    unsigned login = 0;
};

/**
 * Build the Media Service into @p w. Entry is "nginx-lb"; QoS 10ms.
 */
MediaServiceQueries buildMediaService(World &w, const AppOptions &opt = {});

} // namespace uqsim::apps

#endif // UQSIM_APPS_MEDIA_SERVICE_HH
