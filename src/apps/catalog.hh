/**
 * @file
 * Suite catalog: one registry over all six end-to-end applications
 * with the Table-1 metadata of the original suite, plus a generic
 * dispatcher so sweeps (Figs 12-16, 21) can iterate over every app.
 */

#ifndef UQSIM_APPS_CATALOG_HH
#define UQSIM_APPS_CATALOG_HH

#include <string>
#include <vector>

#include "apps/builder.hh"

namespace uqsim::apps {

/** The six end-to-end applications. */
enum class AppId
{
    SocialNetwork,
    MediaService,
    Ecommerce,
    Banking,
    SwarmCloud,
    SwarmEdge,
};

/** All AppIds, in Table-1 order. */
const std::vector<AppId> &allApps();

/** The four cloud-only applications (Swarm excluded). */
const std::vector<AppId> &cloudApps();

/**
 * Table-1 row: characteristics and code composition of the original
 * open-source release, plus the structural facts our models must
 * reproduce (unique microservice count).
 */
struct AppInfo
{
    AppId id;
    std::string name;
    unsigned uniqueMicroservices; ///< Table 1 "Unique Microservices"
    unsigned totalLoc;            ///< Table 1 "Total New LoCs"
    std::string protocol;         ///< RPC / REST+RPC
    unsigned handwrittenCommLoc;  ///< Comm-protocol LoCs, handwritten
    unsigned autogenCommLoc;      ///< Comm-protocol LoCs, Thrift-generated
    std::string languageMix;      ///< per-language LoC breakdown
};

/** Table-1 metadata for @p id. */
const AppInfo &appInfo(AppId id);

/** Build @p id into @p w with default options. */
void buildApp(World &w, AppId id, const AppOptions &opt = {});

/** Printable app name. */
std::string appName(AppId id);

} // namespace uqsim::apps

#endif // UQSIM_APPS_CATALOG_HH
