#include "apps/media_service.hh"

#include "apps/profiles.hh"

namespace uqsim::apps {

namespace {

using service::HandlerSpec;
using service::ServiceDef;
using service::ServiceKind;

ServiceDef
logic(const std::string &name, cpu::ServiceProfile profile,
      HandlerSpec handler, unsigned threads = 16)
{
    ServiceDef def;
    def.name = name;
    def.profile = std::move(profile);
    def.handler = std::move(handler);
    def.kind = ServiceKind::Stateless;
    def.threadsPerInstance = threads;
    def.protocol = rpc::ProtocolModel::thrift();
    return def;
}

} // namespace

MediaServiceQueries
buildMediaService(World &w, const AppOptions &opt)
{
    service::App &app = *w.app;

    // ---- State: 5 memcached tiers, 4 MongoDB tiers, MovieDB (MySQL),
    // NFS for the movie files ------------------------------------------
    addCacheTier(w, "review-memcached", opt.cacheShards);
    addCacheTier(w, "movie-memcached", opt.cacheShards);
    addCacheTier(w, "user-memcached", opt.cacheShards);
    addCacheTier(w, "media-memcached", opt.cacheShards, 75.0);
    addCacheTier(w, "rating-memcached", opt.cacheShards, 40.0);
    addMongoTier(w, "review-db", opt.dbShards);
    addMongoTier(w, "user-db", opt.dbShards, 280.0);
    addMongoTier(w, "media-db", opt.dbShards, 450.0);
    addMongoTier(w, "rating-db", opt.dbShards, 260.0);
    addMysqlTier(w, "movie-db", opt.dbShards, 480.0);
    {
        ServiceDef nfs;
        nfs.name = "nfs";
        nfs.profile = nfsProfile("nfs");
        nfs.kind = ServiceKind::Database;
        nfs.threadsPerInstance = 64;
        nfs.handler.compute(computeUs(900.0, 0.5));
        nfs.defaultResponseBytes = 256 * kKiB; // video chunk
        service::Microservice &svc = app.addService(std::move(nfs));
        for (unsigned i = 0; i < std::max(1u, opt.dbShards); ++i)
            svc.addInstance(w.nextWorker());
    }

    // ---- Leaf logic -----------------------------------------------------
    addLogicTier(w,
                 logic("uniqueID", cppMicroProfile("uniqueID"),
                       HandlerSpec{}.compute(computeUs(8.0, 0.3))),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("movieID", cppMicroProfile("movieID"),
                       HandlerSpec{}
                           .compute(computeUs(25.0, 0.4))
                           .cache("movie-memcached", "movie-db", 0.97)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("textRating", cppMicroProfile("textRating"),
                       HandlerSpec{}.compute(computeUs(45.0, 0.4))),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("userInfo", cppMicroProfile("userInfo"),
                       HandlerSpec{}
                           .compute(computeUs(35.0, 0.4))
                           .cache("user-memcached", "user-db", 0.96)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("cast", cppMicroProfile("cast"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .cache("movie-memcached", "movie-db", 0.93)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("plot", cppMicroProfile("plot"),
                       HandlerSpec{}
                           .compute(computeUs(35.0, 0.4))
                           .cache("movie-memcached", "movie-db", 0.95)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("thumbnail", cppMicroProfile("thumbnail"),
                       HandlerSpec{}
                           .compute(computeUs(90.0, 0.5))
                           .cache("media-memcached", "media-db", 0.92)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("photos", cppMicroProfile("photos"),
                       HandlerSpec{}
                           .compute(computeUs(110.0, 0.5))
                           .cache("media-memcached", "media-db", 0.90)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("videos", cppMicroProfile("videos"),
                       HandlerSpec{}
                           .compute(computeUs(130.0, 0.5))
                           .cache("media-memcached", "media-db", 0.90)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("rating", goMicroProfile("rating"),
                       HandlerSpec{}
                           .compute(computeUs(35.0, 0.4))
                           .cache("rating-memcached", "rating-db", 0.90)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("recommender", recommenderProfile("recommender"),
                       HandlerSpec{}.compute(computeUs(350.0, 0.6))),
                 opt.instancesPerTier);
    for (const char *idx : {"index0", "index1", "index2"}) {
        addLogicTier(w,
                     logic(idx, xapianProfile(idx),
                           HandlerSpec{}.compute(computeUs(180.0, 0.5))),
                     opt.instancesPerTier);
    }

    // ---- Mid-tier logic --------------------------------------------------
    addLogicTier(w,
                 logic("ads", javaMicroProfile("ads"),
                       HandlerSpec{}
                           .compute(computeUs(150.0, 0.5))
                           .callWithProbability("recommender", 0.5)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("search", xapianProfile("search"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .parallelCall("index0", 1)
                           .parallelCall("index1", 1)
                           .parallelCall("index2", 1)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("movie", javaMicroProfile("movie"),
                       HandlerSpec{}
                           .compute(computeUs(70.0, 0.4))
                           .cache("movie-memcached", "movie-db", 0.93)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("movieReview", javaMicroProfile("movieReview"),
                       HandlerSpec{}
                           .compute(computeUs(60.0, 0.4))
                           .cache("review-memcached", "review-db", 0.92)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("userReview", javaMicroProfile("userReview"),
                       HandlerSpec{}
                           .compute(computeUs(55.0, 0.4))
                           .cache("review-memcached", "review-db", 0.92)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("reviewStorage", cppMicroProfile("reviewStorage"),
                       HandlerSpec{}
                           .compute(computeUs(45.0, 0.4))
                           .cache("review-memcached", "review-db", 0.85)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("login", cppMicroProfile("login"),
                       HandlerSpec{}
                           .compute(computeUs(70.0, 0.4))
                           .cache("user-memcached", "user-db", 0.95)
                           .call("userInfo")),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("video-streaming", streamingProfile("video-streaming"),
              HandlerSpec{}.compute(computeUs(250.0, 0.4)).call("nfs"), 64),
        opt.instancesPerTier);
    addLogicTier(w,
                 logic("rent", goMicroProfile("rent"),
                       HandlerSpec{}
                           .compute(computeUs(500.0, 0.5)) // payment auth
                           .call("userInfo")
                           .call("video-streaming")),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("composeReview", cppMicroProfile("composeReview"),
              HandlerSpec{}
                  .compute(computeUs(120.0, 0.5))
                  .call("uniqueID")
                  .call("movieID")
                  .call("textRating")
                  .call("userReview")
                  .call("movieReview")
                  .call("reviewStorage")
                  .call("rating"),
              32),
        opt.instancesPerTier);
    addLogicTier(
        w,
        logic("composePage", cppMicroProfile("composePage"),
              HandlerSpec{}
                  .compute(computeUs(110.0, 0.5))
                  .call("movie")
                  .call("plot")
                  .call("cast")
                  .parallelCall("thumbnail", 2)
                  .call("photos")
                  .call("videos")
                  .call("rating")
                  .call("movieReview"),
              32),
        opt.instancesPerTier);

    // ---- Front end --------------------------------------------------------
    {
        ServiceDef php = logic(
            "php-fpm", phpFpmProfile("php-fpm"),
            HandlerSpec{}
                .compute(computeUs(130.0, 0.5))
                .callTagged("browse", "composePage")
                .callTagged("review", "composeReview")
                .callTagged("rent", "rent")
                .callTagged("stream", "video-streaming")
                .callTagged("login", "login")
                .callWithProbability("ads", 0.3)
                .callWithProbability("search", 0.15),
            64);
        php.kind = ServiceKind::Frontend;
        addLogicTier(w, std::move(php), opt.frontendInstances);
    }
    {
        ServiceDef lb = logic("nginx-lb", nginxProfile("nginx-lb"),
                              HandlerSpec{}
                                  .compute(computeUs(45.0, 0.4))
                                  .callWithMedia("php-fpm"),
                              128);
        lb.kind = ServiceKind::Frontend;
        lb.protocol = rpc::ProtocolModel::restHttp1();
        lb.protocol.connectionsPerPair = 8192; // per-user client connections
        addLogicTier(w, std::move(lb), opt.frontendInstances);
    }

    app.setEntry("nginx-lb");
    app.setQosLatency(10 * kTicksPerMs);

    MediaServiceQueries q;
    q.browseMovie =
        app.addQueryType({"browseMovie", 45.0, 1.0, 0, {"browse"}});
    q.composeReview =
        app.addQueryType({"composeReview", 20.0, 1.0, 0, {"review"}});
    q.rentMovie =
        app.addQueryType({"rentMovie", 10.0, 1.2, 0, {"rent"}});
    q.streamMovie = app.addQueryType(
        {"streamMovie", 20.0, 1.0, 64 * kKiB, {"stream"}});
    q.login = app.addQueryType({"login", 5.0, 1.0, 0, {"login"}});
    app.validate();
    return q;
}

} // namespace uqsim::apps
