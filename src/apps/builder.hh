/**
 * @file
 * World construction and tier-building helpers shared by all six
 * end-to-end applications.
 *
 * A World bundles one scheduling context with its compute cluster,
 * network fabric and App runtime in the right construction order, plus
 * a dedicated client server that injects user requests (so client-side
 * protocol costs are modelled but never bottleneck).
 *
 * Standalone, a World owns its Simulator and is driven through it, as
 * before. Inside a WorldHandle (apps/scenario.hh) each World is one
 * shard: it is constructed with the shard's SimContext, all of its
 * components schedule into that shard's queue/clock, and the
 * ParallelSimulator drives every shard together. Under the Replicate
 * deployment the N worlds are independent replicas; under Partition
 * they are N identical builds of ONE graph whose tiers are pinned to
 * home shards by the placement layer, with cross-shard RPCs riding
 * SimContext::postToShard at the inter-shard wire latency.
 */

#ifndef UQSIM_APPS_BUILDER_HH
#define UQSIM_APPS_BUILDER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/distributions.hh"
#include "core/sim_context.hh"
#include "cpu/core_model.hh"
#include "cpu/server.hh"
#include "net/network.hh"
#include "service/app.hh"

namespace uqsim::apps {

/** Configuration of one simulated deployment. */
struct WorldConfig
{
    /** Servers available for service placement. */
    unsigned workerServers = 5;

    /** Core type of every worker server. */
    cpu::CoreModel coreModel = cpu::CoreModel::xeon();

    /** Fabric parameters. */
    net::NetworkConfig netConfig{};

    /** Runtime parameters (QoS, protocols, tracing, FPGA). */
    service::App::Config appConfig{};

    /** Root seed; every stochastic component forks from it. */
    std::uint64_t seed = 42;
};

/**
 * A complete simulated deployment.
 */
class World
{
  public:
    explicit World(WorldConfig config = {});

    /**
     * Build this world as one shard of a larger deployment: every
     * component schedules through @p ctx instead of the world's own
     * Simulator (which stays dormant — don't drive `sim` here, drive
     * the owning engine).
     */
    World(WorldConfig config, SimContext ctx);

    World(const World &) = delete;
    World &operator=(const World &) = delete;

    /** Drives standalone worlds; dormant when a shard context rules. */
    Simulator sim;

    /** The scheduling context all of this world's components use. */
    SimContext ctx;

    cpu::Cluster cluster;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<service::App> app;

    const WorldConfig &config() const { return config_; }

    /** The client machine (outside the worker pool). */
    cpu::Server &clientServer() { return *client_; }

    /** Next worker server, round-robin (placement helper). */
    cpu::Server &nextWorker();

    /** Worker server by index. */
    cpu::Server &worker(unsigned idx);

    /** Number of worker servers. */
    unsigned workers() const { return config_.workerServers; }

  private:
    struct External
    {
        bool present = false;
        SimContext ctx;
    };

    World(WorldConfig config, External ext);

    WorldConfig config_;
    cpu::Server *client_ = nullptr;
    std::size_t cursor_ = 0;
};

/**
 * Scale-out options shared by the application builders.
 */
struct AppOptions
{
    /** Instances per logic tier. */
    unsigned instancesPerTier = 1;

    /** Instances of the entry tier (front-ends get more). */
    unsigned frontendInstances = 2;

    /** Shards per cache tier. */
    unsigned cacheShards = 2;

    /** Shards per database tier. */
    unsigned dbShards = 2;
};

/**
 * Convert microseconds of work on a nominal Xeon core into cycles,
 * assuming the suite-average effective IPC (~0.6 at 2.4GHz). Handler
 * compute is specified through this for readability; exact per-service
 * time additionally depends on the service's own IPC on its server.
 */
Dist computeUs(double mean_us, double sigma = 0.5);

/** Deterministic compute amount in microseconds (no variance). */
Dist computeUsConst(double us);

// -- Tier helpers -------------------------------------------------------

/** Add a logic tier with @p instances instances placed round-robin. */
service::Microservice &
addLogicTier(World &w, service::ServiceDef def, unsigned instances);

/** Add a memcached-style cache tier (@p shards shards). */
service::Microservice &
addCacheTier(World &w, const std::string &name, unsigned shards,
             double mean_us = 55.0);

/** Add a MongoDB-style persistent tier. */
service::Microservice &
addMongoTier(World &w, const std::string &name, unsigned shards,
             double mean_us = 320.0);

/** Add a MySQL-style relational tier. */
service::Microservice &
addMysqlTier(World &w, const std::string &name, unsigned shards,
             double mean_us = 450.0);

/**
 * Re-provision every stateful tier (caches and databases) of a built
 * app so the per-shard capacity is comparable to the rest of the
 * system - the paper's Sec 3.8 balanced-provisioning regime, needed
 * for the request-skew study (Fig 22b) where hot shards must be able
 * to become the bottleneck. Scales each stateful tier's compute
 * stages and overrides its worker-thread count. Call before any load.
 */
void tightenStatefulTiers(service::App &app, double cache_cost_scale,
                          unsigned cache_threads, double db_cost_scale,
                          unsigned db_threads);

/**
 * Cap the worker-thread count of every stateless/front-end tier: the
 * balanced-provisioning lever for cluster-management experiments
 * (Figs 17, 20-22), where tiers must be able to saturate at loads the
 * simulated cluster can reach. Call before any load.
 */
void throttleLogicTiers(service::App &app, unsigned frontend_threads,
                        unsigned logic_threads);

} // namespace uqsim::apps

#endif // UQSIM_APPS_BUILDER_HH
