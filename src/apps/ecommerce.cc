#include "apps/ecommerce.hh"

#include "apps/profiles.hh"

namespace uqsim::apps {

namespace {

using service::HandlerSpec;
using service::ServiceDef;
using service::ServiceKind;

ServiceDef
logic(const std::string &name, cpu::ServiceProfile profile,
      HandlerSpec handler, unsigned threads = 16, bool rest = false)
{
    ServiceDef def;
    def.name = name;
    def.profile = std::move(profile);
    def.handler = std::move(handler);
    def.kind = ServiceKind::Stateless;
    def.threadsPerInstance = threads;
    def.protocol = rest ? rpc::ProtocolModel::restHttp1()
                        : rpc::ProtocolModel::thrift();
    return def;
}

} // namespace

EcommerceQueries
buildEcommerce(World &w, const AppOptions &opt)
{
    service::App &app = *w.app;

    // ---- State: 6 memcached tiers + 12 MongoDB tiers --------------------
    addCacheTier(w, "catalogue-memcached", opt.cacheShards);
    addCacheTier(w, "cart-memcached", opt.cacheShards);
    addCacheTier(w, "orders-memcached", opt.cacheShards);
    addCacheTier(w, "account-memcached", opt.cacheShards);
    addCacheTier(w, "discount-memcached", opt.cacheShards, 40.0);
    addCacheTier(w, "session-memcached", opt.cacheShards, 40.0);
    addMongoTier(w, "catalogue-db", opt.dbShards);
    addMongoTier(w, "cart-db", opt.dbShards, 280.0);
    addMongoTier(w, "orders-db", opt.dbShards, 360.0);
    addMongoTier(w, "account-db", opt.dbShards, 280.0);
    addMongoTier(w, "shipping-db", opt.dbShards, 300.0);
    addMongoTier(w, "invoice-db", opt.dbShards, 300.0);
    addMongoTier(w, "wishlist-db", opt.dbShards, 260.0);
    addMongoTier(w, "media-db", opt.dbShards, 420.0);
    addMongoTier(w, "social-db", opt.dbShards, 280.0);
    addMongoTier(w, "discounts-db", opt.dbShards, 240.0);
    addMongoTier(w, "payment-db", opt.dbShards, 320.0);
    addMongoTier(w, "queue-db", opt.dbShards, 300.0);

    // ---- Leaves -----------------------------------------------------------
    addLogicTier(w,
                 logic("transactionID", cppMicroProfile("transactionID"),
                       HandlerSpec{}.compute(computeUs(10.0, 0.3))),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("media", nodejsMicroProfile("media"),
                       HandlerSpec{}
                           .compute(computeUs(90.0, 0.5))
                           .cache("catalogue-memcached", "media-db", 0.92)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("socialNet", nodejsMicroProfile("socialNet"),
                       HandlerSpec{}
                           .compute(computeUs(80.0, 0.5))
                           .call("social-db")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("recommender", recommenderProfile("recommender"),
                       HandlerSpec{}.compute(computeUs(380.0, 0.6))),
                 opt.instancesPerTier);
    for (const char *idx : {"index0", "index1", "index2"}) {
        addLogicTier(w,
                     logic(idx, xapianProfile(idx),
                           HandlerSpec{}.compute(computeUs(170.0, 0.5))),
                     opt.instancesPerTier);
    }
    addLogicTier(w,
                 logic("ads", javaMicroProfile("ads"),
                       HandlerSpec{}
                           .compute(computeUs(140.0, 0.5))
                           .callWithProbability("recommender", 0.5)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("search", xapianProfile("search"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .parallelCall("index0", 1)
                           .parallelCall("index1", 1)
                           .parallelCall("index2", 1)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("discounts", nodejsMicroProfile("discounts"),
                       HandlerSpec{}
                           .compute(computeUs(60.0, 0.4))
                           .cache("discount-memcached", "discounts-db",
                                  0.95)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("accountInfo", javaMicroProfile("accountInfo"),
                       HandlerSpec{}
                           .compute(computeUs(70.0, 0.4))
                           .cache("account-memcached", "account-db", 0.95)),
                 opt.instancesPerTier);

    // ---- Business logic ----------------------------------------------------
    addLogicTier(w,
                 logic("login", goMicroProfile("login"),
                       HandlerSpec{}
                           .compute(computeUs(180.0, 0.5))
                           .cache("session-memcached", "account-db", 0.90)
                           .call("accountInfo")),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("catalogue", goMicroProfile("catalogue"),
              HandlerSpec{}
                  .compute(computeUs(320.0, 0.5))
                  .cache("catalogue-memcached", "catalogue-db", 0.93)
                  .callWithProbability("media", 0.6)
                  .callWithProbability("discounts", 0.5),
              32),
        opt.instancesPerTier);
    addLogicTier(w,
                 logic("wishlist", javaMicroProfile("wishlist"),
                       HandlerSpec{}
                           .compute(computeUs(50.0, 0.4))
                           .call("wishlist-db")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("cart", javaMicroProfile("cart"),
                       HandlerSpec{}
                           .compute(computeUs(160.0, 0.5))
                           .cache("cart-memcached", "cart-db", 0.88)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("shipping", javaMicroProfile("shipping"),
                       HandlerSpec{}
                           .compute(computeUs(240.0, 0.5))
                           .call("shipping-db")),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("payment-authorization",
              goMicroProfile("payment-authorization"),
              HandlerSpec{}
                  .compute(computeUs(420.0, 0.5))
                  .call("transactionID")
                  .call("payment-db")),
        opt.instancesPerTier);
    addLogicTier(w,
                 logic("payment", goMicroProfile("payment"),
                       HandlerSpec{}
                           .compute(computeUs(380.0, 0.5))
                           .call("payment-authorization")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("invoicing", javaMicroProfile("invoicing"),
                       HandlerSpec{}
                           .compute(computeUs(280.0, 0.5))
                           .call("transactionID")
                           .call("invoice-db")),
                 opt.instancesPerTier);
    // orderQueue: RabbitMQ-like broker feeding the order pipeline.
    addLogicTier(w,
                 logic("orderQueue", queueProfile("orderQueue"),
                       HandlerSpec{}
                           .compute(computeUs(90.0, 0.4))
                           .call("queue-db"),
                       32),
                 opt.instancesPerTier);
    // queueMaster serializes committed orders: few worker threads by
    // design (the synchronization bottleneck of Sec 7).
    addLogicTier(w,
                 logic("queueMaster", goMicroProfile("queueMaster"),
                       HandlerSpec{}
                           .compute(computeUs(220.0, 0.4))
                           .call("orderQueue"),
                       4),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("orders", goMicroProfile("orders"),
              HandlerSpec{}
                  .compute(computeUs(340.0, 0.5))
                  .call("cart")
                  .call("accountInfo")
                  .call("shipping")
                  .call("payment")
                  .call("invoicing")
                  .call("queueMaster")
                  .cache("orders-memcached", "orders-db", 0.80),
              32),
        opt.instancesPerTier);

    // ---- Front end (node.js, REST) ----------------------------------------
    {
        ServiceDef fe = logic(
            "front-end", nodejsMicroProfile("front-end"),
            HandlerSpec{}
                .compute(computeUs(200.0, 0.5))
                .callTagged("login", "login")
                .callTagged("browse", "catalogue")
                .callTagged("cart", "cart")
                .callTagged("wish", "wishlist")
                .callTagged("order", "login")
                .callTagged("order", "orders")
                .callWithProbability("ads", 0.3)
                .callWithProbability("search", 0.2)
                .callWithProbability("recommender", 0.15),
            64, /*rest=*/true);
        fe.kind = ServiceKind::Frontend;
        fe.protocol.connectionsPerPair = 8192; // per-user client connections
        addLogicTier(w, std::move(fe), opt.frontendInstances);
    }

    app.setEntry("front-end");
    app.setQosLatency(20 * kTicksPerMs);

    EcommerceQueries q;
    q.browseCatalogue =
        app.addQueryType({"browseCatalogue", 50.0, 1.0, 0, {"browse"}});
    q.addToCart = app.addQueryType({"addToCart", 20.0, 1.0, 0, {"cart", "write"}});
    q.placeOrder =
        app.addQueryType({"placeOrder", 15.0, 1.0, 0, {"order", "write"}});
    q.wishlist = app.addQueryType({"wishlist", 10.0, 1.0, 0, {"wish", "write"}});
    q.login = app.addQueryType({"login", 5.0, 1.0, 0, {"login"}});
    app.validate();
    return q;
}

EcommerceQueries
buildEcommerceMonolith(World &w, const AppOptions &opt)
{
    service::App &app = *w.app;

    addCacheTier(w, "catalogue-memcached", opt.cacheShards);
    addCacheTier(w, "session-memcached", opt.cacheShards, 40.0);
    addMongoTier(w, "catalogue-db", opt.dbShards);
    addMongoTier(w, "orders-db", opt.dbShards, 360.0);

    // All shop logic in one Java binary; placing an order still runs
    // its long multi-step path, now as one big compute burst plus the
    // order commit to the database.
    ServiceDef mono;
    mono.name = "monolith";
    mono.profile = monolithProfile("monolith");
    mono.kind = ServiceKind::Stateless;
    mono.threadsPerInstance = 64;
    mono.queueCapacity = 64;
    mono.protocol = rpc::ProtocolModel::restHttp1();
    mono.protocol.perByteCycles = 0.2;
    mono.protocol.connectionsPerPair = 8192;
    mono.handler
        .compute(computeUs(700.0, 0.5))
        .cache("catalogue-memcached", "catalogue-db", 0.93)
        .cache("session-memcached", "catalogue-db", 0.95)
        .computeTagged("order", computeUs(1800.0, 0.5))
        .add([] {
            service::Stage s;
            s.kind = service::Stage::Kind::Call;
            s.target = "orders-db";
            s.onlyForTag = "order";
            return s;
        }());
    addLogicTier(w, std::move(mono), std::max(2u, opt.frontendInstances));

    ServiceDef lb;
    lb.name = "nginx-lb";
    lb.profile = nginxProfile("nginx-lb");
    lb.kind = ServiceKind::Frontend;
    lb.threadsPerInstance = 128;
    lb.protocol = rpc::ProtocolModel::restHttp1();
    lb.protocol.connectionsPerPair = 8192;
    lb.handler.compute(computeUs(45.0, 0.4)).call("monolith");
    addLogicTier(w, std::move(lb), opt.frontendInstances);

    app.setEntry("nginx-lb");
    app.setQosLatency(20 * kTicksPerMs);

    EcommerceQueries q;
    q.browseCatalogue =
        app.addQueryType({"browseCatalogue", 50.0, 1.0, 0, {"browse"}});
    q.addToCart = app.addQueryType({"addToCart", 20.0, 1.0, 0, {"cart", "write"}});
    q.placeOrder =
        app.addQueryType({"placeOrder", 15.0, 1.0, 0, {"order", "write"}});
    q.wishlist = app.addQueryType({"wishlist", 10.0, 1.0, 0, {"wish", "write"}});
    q.login = app.addQueryType({"login", 5.0, 1.0, 0, {"login"}});
    app.validate();
    return q;
}

} // namespace uqsim::apps
