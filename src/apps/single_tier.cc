#include "apps/single_tier.hh"

#include "apps/profiles.hh"
#include "core/logging.hh"

namespace uqsim::apps {

std::string
singleTierName(SingleTierKind kind)
{
    switch (kind) {
      case SingleTierKind::Nginx:
        return "NGINX";
      case SingleTierKind::Memcached:
        return "memcached";
      case SingleTierKind::MongoDB:
        return "MongoDB";
      case SingleTierKind::Xapian:
        return "Xapian";
      case SingleTierKind::Recommender:
        return "Recommender";
    }
    return "unknown";
}

void
buildSingleTier(World &w, SingleTierKind kind, unsigned instances)
{
    service::ServiceDef def;
    Tick qos = 10 * kTicksPerMs;

    switch (kind) {
      case SingleTierKind::Nginx:
        def.name = "nginx";
        def.profile = nginxProfile("nginx");
        def.handler.compute(computeUs(1150.0, 0.4));
        def.threadsPerInstance = 128;
        def.protocol = rpc::ProtocolModel::restHttp1();
        def.protocol.connectionsPerPair = 256;
        def.defaultResponseBytes = 64 * kKiB;
        qos = 10 * kTicksPerMs;
        break;
      case SingleTierKind::Memcached:
        def.name = "memcached";
        def.profile = memcachedProfile("memcached");
        def.handler.compute(computeUs(130.0, 0.4));
        def.threadsPerInstance = 64;
        def.protocol = rpc::ProtocolModel::thrift();
        def.defaultResponseBytes = 2 * kKiB;
        qos = 2 * kTicksPerMs;
        break;
      case SingleTierKind::MongoDB:
        def.name = "mongodb";
        def.profile = mongodbProfile("mongodb");
        def.handler.compute(computeUs(330.0, 0.5));
        def.threadsPerInstance = 64;
        def.protocol = rpc::ProtocolModel::thrift();
        def.defaultResponseBytes = 8 * kKiB;
        qos = 4 * kTicksPerMs;
        break;
      case SingleTierKind::Xapian:
        def.name = "xapian";
        def.profile = xapianProfile("xapian");
        def.handler.compute(computeUs(750.0, 0.5));
        def.threadsPerInstance = 32;
        def.protocol = rpc::ProtocolModel::restHttp1();
        def.defaultResponseBytes = 16 * kKiB;
        qos = 8 * kTicksPerMs;
        break;
      case SingleTierKind::Recommender:
        def.name = "recommender";
        def.profile = recommenderProfile("recommender");
        def.handler.compute(computeUs(2200.0, 0.5));
        def.threadsPerInstance = 32;
        def.protocol = rpc::ProtocolModel::grpc();
        def.defaultResponseBytes = 4 * kKiB;
        qos = 20 * kTicksPerMs;
        break;
    }

    def.kind = service::ServiceKind::Frontend;
    const std::string entry = def.name;
    service::Microservice &svc = w.app->addService(std::move(def));
    for (unsigned i = 0; i < std::max(1u, instances); ++i)
        svc.addInstance(w.nextWorker());

    w.app->setEntry(entry);
    w.app->setQosLatency(qos);
    w.app->addQueryType({entry, 1.0, 1.0, 0, {}});
    w.app->validate();
}

} // namespace uqsim::apps
