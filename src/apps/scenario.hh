/**
 * @file
 * Scenario configuration + sharded deployments.
 *
 * A Scenario is the complete declarative description of one uqsim_run
 * invocation: which app, how much hardware, the load window, the
 * client-side resilience policy, the fault schedule, the shard layout
 * and the placement. It round-trips through JSON (`--config` /
 * `--dump-config`), so a run is fully described by one file plus the
 * binary version.
 *
 * WorldHandle is the parallel deployment built from a Scenario — one
 * World per ParallelSimulator shard — in one of two modes:
 *
 * - Deployment::Replicate: N independent replica worlds with
 *   shard-derived seeds, each serving 1/N of the load. No cross-shard
 *   channels exist, so the engine runs with unbounded lookahead. This
 *   scales offered throughput, not one application.
 *
 * - Deployment::Partition: every shard builds the identical world
 *   from the *same* seed, each tier is pinned to one home shard by the
 *   placement layer (data/placement.hh), and calls to a tier homed
 *   elsewhere cross the engine mailbox. The conservative lookahead is
 *   the inter-shard wire latency — the minimum delay any cross-shard
 *   message experiences in the network model — which is what lets
 *   shards advance in parallel without ever reordering a delivery.
 *   This scales one application graph.
 *
 * In both modes a one-shard deployment is bit-identical to a
 * standalone World (same seed, same construction order), which is what
 * keeps `--shards 1` digests equal to the classic single-queue path.
 */

#ifndef UQSIM_APPS_SCENARIO_HH
#define UQSIM_APPS_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/builder.hh"
#include "core/parallel.hh"
#include "data/config.hh"
#include "data/placement.hh"
#include "fault/fault.hh"
#include "obs/pipeline.hh"
#include "replica/replication.hh"
#include "trace/collector.hh"
#include "workload/generators.hh"
#include "workload/load_sweep.hh"
#include "workload/user_population.hh"

namespace uqsim::apps {

/**
 * Everything that defines one run. Field-for-field the uqsim_run
 * option surface; see tools/uqsim_run.cc --help for semantics.
 */
struct Scenario
{
    std::string app = "social-network";

    // -- load window ------------------------------------------------
    double qps = 300.0;
    double durationSec = 10.0;
    double warmupSec = 2.0;

    // -- platform ---------------------------------------------------
    unsigned servers = 5;
    unsigned drones = 24;
    std::string core = "xeon";
    double freqMhz = 0.0;
    bool fpga = false;
    std::string lambda; ///< "", "s3", "mem"
    unsigned slowServers = 0;
    double slowFactor = 40.0;

    // -- workload ---------------------------------------------------
    double skew = -1.0; ///< <0: uniform users
    std::uint64_t users = 1000;
    std::uint64_t seed = 42;

    // -- shard layout -----------------------------------------------
    unsigned shards = 1;
    unsigned threads = 1;

    // -- placement across shards ------------------------------------
    /**
     * Deployment mode: "none" — the legacy default, N replica worlds
     * exactly as before this surface existed — "replicate" (the same
     * thing, spelled explicitly), or "partition" (one world split
     * across shards, tiers pinned to home shards per `pins`).
     */
    std::string placement = "none";
    std::vector<data::PlacementPin> pins; ///< partition mode only

    // -- client-side resilience ------------------------------------
    Tick rpcTimeout = 0;
    Tick deadline = 0;
    unsigned retries = 0;
    double retryBudget = 0.0;
    bool breaker = false;
    unsigned shed = 0;

    // -- server-side admission control / QoS classes ----------------
    bool qosEnabled = false;
    unsigned qosWeightUser = 8;  ///< WRR credits, user-facing
    unsigned qosWeightBatch = 2; ///< WRR credits, batch
    unsigned qosWeightBest = 1;  ///< WRR credits, best-effort
    unsigned qosQueue = 0;    ///< per-class bound (0 = tier capacity)
    double qosRate = 0.0;     ///< admitted req/s per instance (0 = off)
    double qosBurst = 32.0;   ///< token-bucket burst
    double qosShedBatch = 0.5;  ///< batch shed threshold (fraction)
    double qosShedBest = 0.25;  ///< best-effort shed threshold
    std::string qosBatch;       ///< comma-separated query-type names
    std::string qosBestEffort;  ///< comma-separated query-type names

    // -- keyed data tier (0 keys = legacy fixed-hitProb caches) -----
    std::uint64_t dataKeys = 0;
    std::uint64_t dataCapacity = 4096; ///< entries per cache instance
    std::string dataPolicy = "lru";        ///< lru | lfu | slru
    std::string dataPopularity = "zipf";   ///< zipf | uniform | hotspot
    double dataZipfS = 1.0;
    double dataHotFraction = 0.1;
    double dataHotMass = 0.9;
    Tick dataTtl = 0;
    std::string dataWrite = "through";     ///< through | invalidate
    Tick dataShiftPeriod = 0;
    unsigned dataVnodes = 64;

    // -- replicated keyed-data tier (factor < 2 = unreplicated) -----
    unsigned replicaFactor = 0;    ///< replicas per group (>= 2 enables)
    unsigned replicaQuorum = 0;    ///< write quorum W (0 = majority)
    Tick replicaApplyLag = 1 * kTicksPerMs;    ///< lag per ring hop
    Tick replicaElectionTimeout = 50 * kTicksPerMs;
    Tick replicaCatchUp = 100 * kTicksPerMs;   ///< restart log replay
    std::string replicaRead = "leader"; ///< leader | nearest | ryw
    unsigned txnKeys = 0;          ///< >= 2: 2PC on write-tagged stages
    Tick txnPrepareTimeout = 10 * kTicksPerMs;

    // -- observability / SLO monitoring (opt-in) --------------------
    bool obsEnabled = false;
    Tick obsInterval = 100 * kTicksPerMs; ///< sampling boundary period
    std::uint64_t obsRing = 4096;         ///< ring bound per series
    Tick sloLatency = 0;       ///< latency bound at sloQuantile (0 = off)
    double sloQuantile = 0.99; ///< in (0, 1)
    unsigned sloWindow = 3;    ///< consecutive bad intervals to trip
    double sloErrorRate = 0.0; ///< error-rate bound (0 = off)
    std::string sloTier;       ///< series under the SLO ("" = e2e)

    // -- generated topology (opt-in; "" = the hand-written `app`) ---
    /**
     * Name of a gen::GenProfile. When non-empty, buildScenarioApp()
     * samples a topology from (profile, genSeed) instead of building
     * `app` — everything else (data/qos/slo/replication/placement)
     * layers on the generated world unchanged.
     */
    std::string genProfile;
    std::uint64_t genSeed = 1;
    unsigned genDepth = 0;  ///< pin logic levels (0 = profile draw)
    unsigned genWidth = 0;  ///< pin tiers per level (0 = profile draw)
    double genFanout = 0.0; ///< override mean fan-out (0 = profile)

    // -- arrival process (poisson = legacy byte-identical path) -----
    std::string arrival = "poisson"; ///< poisson|mmpp|diurnal|flash
    double arrivalBurst = 4.0;       ///< mmpp peak/base rate ratio
    double arrivalDuty = 0.1;        ///< mmpp peak-state time fraction
    Tick arrivalDwell = 200 * kTicksPerMs; ///< mmpp mean peak sojourn
    Tick arrivalPeriod = 10 * kTicksPerSec; ///< diurnal "day" length
    double arrivalLow = 0.2;         ///< diurnal night fraction
    Tick arrivalFlashAt = 2 * kTicksPerSec;
    Tick arrivalFlashRamp = 200 * kTicksPerMs;
    double arrivalFlashMult = 8.0;
    Tick arrivalFlashHold = 1 * kTicksPerSec;

    // -- faults & tracing -------------------------------------------
    std::vector<fault::FaultSpec> faults;
    std::size_t traceCapacity = trace::TraceStore::kDefaultCapacity;
};

/** The DataTierConfig a scenario's data fields describe. */
data::DataTierConfig dataTierConfigFor(const Scenario &s);

/**
 * The ReplicationConfig a scenario's replica/txn fields describe.
 * Valid only when replicaFactor >= 2 (and replicaRead names a real
 * read preference — buildScenarioApp dies otherwise).
 */
replica::ReplicationConfig replicationConfigFor(const Scenario &s);

/** The QosConfig a scenario's qos fields describe. */
service::QosConfig qosConfigFor(const Scenario &s);

/**
 * The ArrivalConfig a scenario's arrival fields describe. Dies on an
 * unknown process name (parse/CLI validation rejects those earlier).
 */
workload::ArrivalConfig arrivalConfigFor(const Scenario &s);

/** The obs::PipelineConfig a scenario's obs/slo fields describe. */
obs::PipelineConfig obsConfigFor(const Scenario &s);

/**
 * Attach and start an observability pipeline over @p w's app when the
 * scenario enables one (obsEnabled, or any armed SLO objective).
 * @return the pipeline, or nullptr when observability is off. The
 * pipeline must outlive all driving of the world — declare it after
 * the World/WorldHandle so it is destroyed first.
 */
std::unique_ptr<obs::Pipeline> attachObservability(World &w,
                                                   const Scenario &s);

/**
 * Parse a "user,batch,best" weight triple (the --qos-weights / qos
 * weights format). @return false on malformed input or a zero weight
 * (a zero-weight class would starve under WRR).
 */
bool parseQosWeights(const std::string &text, unsigned &user,
                     unsigned &batch, unsigned &best);

/**
 * Parse a scenario JSON document. Unknown keys are errors (typos must
 * not silently change a run). Durations accept "50ms"-style strings or
 * bare numbers (milliseconds); fields left out keep their defaults in
 * @p out as passed in, so CLI flags before --config act as defaults.
 * @return false and set @p error on malformed input.
 */
bool parseScenarioJson(const std::string &text, Scenario &out,
                       std::string &error);

/**
 * Render @p s as a scenario JSON document (deterministic key order,
 * durations in "ns" units). parseScenarioJson(scenarioToJson(s))
 * reproduces @p s exactly.
 */
std::string scenarioToJson(const Scenario &s);

/** Resolve a --core name; @return false if unknown. */
bool coreModelByName(const std::string &name, cpu::CoreModel &out);

/** The WorldConfig a scenario's hardware fields describe. */
WorldConfig worldConfigFor(const Scenario &s);

/**
 * Build the scenario's app into @p w (any of the --app names:
 * end-to-end services, single-tier baselines, the monolith). Dies on
 * an unknown name.
 */
void buildScenarioApp(World &w, const Scenario &s);

/** How a WorldHandle spreads one Scenario over engine shards. */
enum class Deployment
{
    /**
     * N independent replica worlds with shard-derived seeds, each
     * serving 1/N of the load. No cross-shard channels, so the engine
     * runs with unbounded lookahead. Scales offered throughput.
     */
    Replicate,

    /**
     * One application graph split across shards: every shard builds
     * the identical world from the *same* seed and each tier runs
     * only on its home shard (App::enablePartition). Cross-shard RPCs
     * travel through SimContext::postToShard with conservative
     * lookahead = the inter-shard wire latency. Scales one app.
     */
    Partition,
};

/**
 * A sharded deployment: one World per shard of a ParallelSimulator,
 * in either Deployment mode. Replicate seeds shard i's World with
 * shardSeed(seed, i); Partition reuses the base seed on every shard —
 * the shards are one world, not N experiments — and bounds the engine
 * lookahead by the net model's wire latency (unbounded at one shard,
 * where no cross-shard message can exist). In both modes a one-shard
 * handle reproduces the standalone World bit-for-bit.
 */
class WorldHandle
{
  public:
    WorldHandle(const WorldConfig &base, unsigned shards,
                unsigned threads,
                Deployment deployment = Deployment::Replicate);

    WorldHandle(const WorldHandle &) = delete;
    WorldHandle &operator=(const WorldHandle &) = delete;

    ParallelSimulator &engine() { return engine_; }
    const ParallelSimulator &engine() const { return engine_; }

    unsigned shards() const { return engine_.shardCount(); }

    Deployment deployment() const { return deployment_; }

    World &shard(unsigned i) { return *worlds_[i]; }
    const World &shard(unsigned i) const { return *worlds_[i]; }

    /**
     * Partition-mode wiring, called once after every shard's app has
     * been built: compute the tier -> home-shard map from @p pins
     * (data::assignPlacement over shard 0's service order, strict
     * validation) and arm every shard's App with it plus the peer
     * vector. Fatal outside Partition mode, on invalid pins, or when
     * the shards' graphs disagree.
     */
    void enablePartition(const std::vector<data::PlacementPin> &pins);

    /** The deterministic per-shard seed derivation (i=0 -> seed). */
    static std::uint64_t shardSeed(std::uint64_t seed, unsigned shard);

  private:
    Deployment deployment_;
    ParallelSimulator engine_;
    std::vector<std::unique_ptr<World>> worlds_;
};

/** The load window runWorld() drives a WorldHandle through. */
struct LoadSpec
{
    double qps = 300.0;
    Tick warmup = 0;
    Tick measure = 0;
    workload::UserPopulation users = workload::UserPopulation::uniform(1000);
    std::uint64_t seed = 42;

    /**
     * Arrival process driving each generator. The Poisson default
     * attaches nothing and runs the legacy byte-identical sampler;
     * any other kind gets its own RNG stream (derived from `seed`,
     * disjoint from the query-mix/user draws), so switching processes
     * never perturbs anything but the arrival instants.
     */
    workload::ArrivalConfig arrival;
};

/**
 * The unified load driver for both deployment modes.
 *
 * Replicate: every shard gets its own open-loop generator at
 * qps/shards (workload seed shardSeed(seed, i)); the measured window
 * is aggregated across shards (histograms merged, counts summed,
 * utilization averaged). With one shard this issues the exact call
 * sequence of workload::runLoad(), so digests and printed numbers
 * match the classic path bit-for-bit.
 *
 * Partition: one generator drives shard 0's app — the world's single
 * entry point — at the full qps with the plain seed; handler work
 * lands on whichever shard each tier calls home. End-to-end results
 * come from shard 0's app (the only one injecting); utilization is
 * averaged across shards.
 */
workload::LoadResult runWorld(WorldHandle &w, const LoadSpec &spec);

/** What one whole-scenario run produced (the sweep-harness surface). */
struct ScenarioRunResult
{
    workload::LoadResult load;
    std::uint64_t digest = 0; ///< engine execution digest
    std::uint64_t events = 0; ///< events executed
    std::uint64_t failed = 0; ///< failed requests across shards
};

/**
 * Run @p s end to end exactly as uqsim_run does — build the
 * WorldHandle, apply lambda/frequency/slow-server/resilience knobs,
 * arm faults, wire placement, drive the load window — and return the
 * aggregate result. This is the headless driver uqsim_sweep maps over
 * a corpus; uqsim_run keeps its own copy of the sequence because it
 * also renders per-shard report sections.
 */
ScenarioRunResult runScenario(const Scenario &s);

} // namespace uqsim::apps

#endif // UQSIM_APPS_SCENARIO_HH
