#include "apps/social_network.hh"

#include "apps/profiles.hh"

namespace uqsim::apps {

namespace {

using service::HandlerSpec;
using service::QueryType;
using service::ServiceDef;
using service::ServiceKind;

/** Shorthand for a Thrift logic tier. */
ServiceDef
logic(const std::string &name, cpu::ServiceProfile profile,
      HandlerSpec handler, unsigned threads = 16)
{
    ServiceDef def;
    def.name = name;
    def.profile = std::move(profile);
    def.handler = std::move(handler);
    def.kind = ServiceKind::Stateless;
    def.threadsPerInstance = threads;
    def.protocol = rpc::ProtocolModel::thrift();
    return def;
}

SocialNetworkQueries
registerQueries(service::App &app)
{
    SocialNetworkQueries q;
    q.readTimeline = app.addQueryType(
        {"readTimeline", 55.0, 1.0, 0, {"read"}});
    q.composeText = app.addQueryType(
        {"composePost-text", 20.0, 1.0, 0, {"compose", "write"}});
    q.composeImage = app.addQueryType(
        {"composePost-image", 8.0, 1.15, 200 * kKiB,
         {"compose", "image", "write"}});
    q.composeVideo = app.addQueryType(
        {"composePost-video", 4.0, 1.3, 1536 * kKiB,
         {"compose", "video", "write"}});
    q.repost = app.addQueryType(
        {"repost", 4.0, 1.1, 0, {"read", "compose", "write"}});
    // Replying publicly reads the post then composes the reply; a
    // direct message writes straight into one user's inbox timeline.
    q.reply = app.addQueryType({"reply", 3.0, 1.0, 0, {"reply"}});
    q.directMessage =
        app.addQueryType({"directMessage", 3.0, 1.0, 0, {"dm", "write"}});
    q.login = app.addQueryType({"login", 4.0, 1.0, 0, {"login"}});
    q.followUser = app.addQueryType(
        {"followUser", 5.0, 1.0, 0, {"follow", "write"}});
    q.unfollowUser = app.addQueryType(
        {"unfollowUser", 2.0, 1.0, 0, {"follow", "write"}});
    q.blockUser = app.addQueryType(
        {"blockUser", 1.0, 1.0, 0, {"block", "write"}});
    return q;
}

} // namespace

SocialNetworkQueries
buildSocialNetwork(World &w, const AppOptions &opt)
{
    service::App &app = *w.app;

    // ---- Back-end state: 6 memcached tiers + 5 MongoDB tiers -------
    addCacheTier(w, "posts-memcached", opt.cacheShards);
    addCacheTier(w, "timeline-memcached", opt.cacheShards);
    addCacheTier(w, "profile-memcached", opt.cacheShards);
    addCacheTier(w, "media-memcached", opt.cacheShards, 75.0);
    addCacheTier(w, "social-graph-memcached", opt.cacheShards);
    addCacheTier(w, "url-memcached", opt.cacheShards, 40.0);
    addMongoTier(w, "posts-db", opt.dbShards);
    addMongoTier(w, "timeline-db", opt.dbShards);
    addMongoTier(w, "profile-db", opt.dbShards, 280.0);
    addMongoTier(w, "media-db", opt.dbShards, 450.0);
    addMongoTier(w, "social-graph-db", opt.dbShards, 300.0);

    // ---- Leaf logic tiers -------------------------------------------
    addLogicTier(w,
                 logic("uniqueID", cppMicroProfile("uniqueID"),
                       HandlerSpec{}.compute(computeUs(8.0, 0.3))),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("urlShorten", cppMicroProfile("urlShorten"),
                       HandlerSpec{}
                           .compute(computeUs(30.0, 0.4))
                           .cache("url-memcached", "posts-db", 0.97)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("userTag", cppMicroProfile("userTag"),
                       HandlerSpec{}
                           .compute(computeUs(25.0, 0.4))
                           .cache("social-graph-memcached",
                                  "social-graph-db", 0.95)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("image", cppMicroProfile("image"),
                       HandlerSpec{}
                           .compute(computeUs(120.0, 0.5))
                           .cache("media-memcached", "media-db", 0.90)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("video", cppMicroProfile("video"),
                       HandlerSpec{}
                           .compute(computeUs(300.0, 0.5))
                           .cache("media-memcached", "media-db", 0.90)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("recommender", recommenderProfile("recommender"),
                       HandlerSpec{}.compute(computeUs(350.0, 0.6))),
                 opt.instancesPerTier);
    for (const char *idx : {"index0", "index1", "index2"}) {
        addLogicTier(w,
                     logic(idx, xapianProfile(idx),
                           HandlerSpec{}.compute(computeUs(180.0, 0.5))),
                     opt.instancesPerTier);
    }
    addLogicTier(w,
                 logic("blockedUsers", cppMicroProfile("blockedUsers"),
                       HandlerSpec{}
                           .compute(computeUs(20.0, 0.4))
                           .cache("profile-memcached", "profile-db", 0.97)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("userInfo", cppMicroProfile("userInfo"),
                       HandlerSpec{}
                           .compute(computeUs(35.0, 0.4))
                           .cache("profile-memcached", "profile-db", 0.96)),
                 opt.instancesPerTier);

    // ---- Mid-tier logic ----------------------------------------------
    addLogicTier(w,
                 logic("text", cppMicroProfile("text"),
                       HandlerSpec{}
                           .compute(computeUs(50.0, 0.5))
                           .call("urlShorten")
                           .call("userTag")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("ads", javaMicroProfile("ads"),
                       HandlerSpec{}
                           .compute(computeUs(150.0, 0.5))
                           .callWithProbability("recommender", 0.5)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("search", xapianProfile("search"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .parallelCall("index0", 1)
                           .parallelCall("index1", 1)
                           .parallelCall("index2", 1)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("postsStorage", cppMicroProfile("postsStorage"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .cache("posts-memcached", "posts-db", 0.92)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("writeTimeline", cppMicroProfile("writeTimeline"),
                       HandlerSpec{}
                           .compute(computeUs(45.0, 0.4))
                           .cache("timeline-memcached", "timeline-db",
                                  0.85)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("writeGraph", cppMicroProfile("writeGraph"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .call("social-graph-db")
                           .call("social-graph-memcached")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("readPost", cppMicroProfile("readPost"),
                       HandlerSpec{}
                           .compute(computeUs(45.0, 0.4))
                           .cache("posts-memcached", "posts-db", 0.95)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("readTimeline", cppMicroProfile("readTimeline"),
                       HandlerSpec{}
                           .compute(computeUs(55.0, 0.4))
                           .cache("timeline-memcached", "timeline-db",
                                  0.92)
                           .parallelCall("readPost", 3)
                           .call("blockedUsers")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("favorite", cppMicroProfile("favorite"),
                       HandlerSpec{}
                           .compute(computeUs(25.0, 0.4))
                           .call("postsStorage")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("login", cppMicroProfile("login"),
                       HandlerSpec{}
                           .compute(computeUs(70.0, 0.4))
                           .cache("profile-memcached", "profile-db", 0.95)
                           .call("userInfo")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("followUser", cppMicroProfile("followUser"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .call("writeGraph")
                           .call("userInfo")),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("composePost", cppMicroProfile("composePost"),
              HandlerSpec{}
                  .compute(computeUs(160.0, 0.5))
                  .call("uniqueID")
                  .call("text")
                  .callTaggedWithMedia("image", "image")
                  .callTaggedWithMedia("video", "video")
                  .call("postsStorage")
                  .call("writeTimeline")
                  .call("writeGraph"),
              32),
        opt.instancesPerTier);

    // ---- Front end -----------------------------------------------------
    {
        ServiceDef php = logic(
            "php-fpm", phpFpmProfile("php-fpm"),
            HandlerSpec{}
                .compute(computeUs(130.0, 0.5))
                .callTagged("login", "login")
                .callTagged("follow", "followUser")
                .callTagged("read", "readTimeline")
                .callTaggedWithMedia("compose", "composePost")
                .callTagged("reply", "readPost")
                .callTagged("reply", "composePost")
                .callTagged("dm", "writeTimeline")
                .callTagged("block", "blockedUsers")
                .callTagged("block", "writeGraph")
                .add([] {
                    service::Stage s;
                    s.kind = service::Stage::Kind::Call;
                    s.target = "favorite";
                    s.probability = 0.05;
                    s.onlyForTag = "read";
                    return s;
                }())
                .callWithProbability("ads", 0.3)
                .callWithProbability("search", 0.1),
            64);
        php.kind = ServiceKind::Frontend;
        addLogicTier(w, std::move(php), opt.frontendInstances);
    }
    {
        ServiceDef lb = logic("nginx-lb", nginxProfile("nginx-lb"),
                              HandlerSpec{}
                                  .compute(computeUs(45.0, 0.4))
                                  .callWithMedia("php-fpm"),
                              128);
        lb.kind = ServiceKind::Frontend;
        lb.protocol = rpc::ProtocolModel::restHttp1();
        lb.protocol.connectionsPerPair = 8192; // per-user client connections
        addLogicTier(w, std::move(lb), opt.frontendInstances);
    }

    app.setEntry("nginx-lb");
    // The tail includes video-composition requests (tens of ms), so
    // the end-to-end QoS sits well above the mean (Sec 3.8).
    app.setQosLatency(35 * kTicksPerMs);
    SocialNetworkQueries q = registerQueries(app);
    app.validate();
    return q;
}

SocialNetworkQueries
buildSocialNetworkMonolith(World &w, const AppOptions &opt)
{
    service::App &app = *w.app;

    addCacheTier(w, "posts-memcached", opt.cacheShards);
    addCacheTier(w, "timeline-memcached", opt.cacheShards);
    addMongoTier(w, "posts-db", opt.dbShards);
    addMongoTier(w, "timeline-db", opt.dbShards);

    // All logic in one binary: one big compute burst per request plus
    // the external cache/database accesses. The compute covers what
    // the microservices version spreads over ~10 tiers.
    ServiceDef mono;
    mono.name = "monolith";
    mono.profile = monolithProfile("monolith");
    mono.kind = ServiceKind::Stateless;
    mono.threadsPerInstance = 64;
    mono.protocol = rpc::ProtocolModel::restHttp1();
    // Media uploads are passed through as opaque bytes, not re-encoded
    // through the JSON layer.
    mono.protocol.perByteCycles = 0.2;
    // The LB keeps a deep keep-alive pool per monolith instance, so a
    // slow instance never head-of-line-blocks traffic to healthy ones
    // (monolith copies operate independently, Sec 8).
    mono.protocol.connectionsPerPair = 8192; // per-user client connections
    // One binary, one bounded listen backlog: an overloaded monolith
    // instance sheds load quickly instead of stalling the LB, unlike
    // the deep per-tier queues of the microservices version.
    mono.queueCapacity = 64;
    mono.handler
        .compute(computeUs(820.0, 0.5))
        .cache("timeline-memcached", "timeline-db", 0.92)
        .cache("posts-memcached", "posts-db", 0.94)
        .computeTagged("compose", computeUs(260.0, 0.5))
        .add([] {
            service::Stage s;
            s.kind = service::Stage::Kind::Call;
            s.target = "timeline-db";
            s.onlyForTag = "compose";
            return s;
        }());
    addLogicTier(w, std::move(mono), std::max(2u, opt.frontendInstances));

    ServiceDef lb;
    lb.name = "nginx-lb";
    lb.profile = nginxProfile("nginx-lb");
    lb.kind = ServiceKind::Frontend;
    lb.threadsPerInstance = 128;
    lb.protocol = rpc::ProtocolModel::restHttp1();
    lb.protocol.connectionsPerPair = 8192; // per-user client connections
    lb.handler.compute(computeUs(25.0, 0.4)).call("monolith");
    addLogicTier(w, std::move(lb), opt.frontendInstances);

    app.setEntry("nginx-lb");
    app.setQosLatency(35 * kTicksPerMs);
    SocialNetworkQueries q = registerQueries(app);
    app.validate();
    return q;
}

} // namespace uqsim::apps
