/**
 * @file
 * Deployment cost models for Fig 21: reserved EC2 containers vs
 * per-request AWS Lambda billing (2019 prices, matching the paper's
 * evaluation window).
 */

#ifndef UQSIM_SERVERLESS_COST_MODEL_HH
#define UQSIM_SERVERLESS_COST_MODEL_HH

#include <cstdint>

#include "core/types.hh"

namespace uqsim::serverless {

/**
 * Reserved-instance (EC2) pricing.
 */
struct Ec2CostModel
{
    /** On-demand price per instance-hour (m5.12xlarge, 2019). */
    double pricePerInstanceHour = 2.304;

    /** Total cost of @p instances running for @p duration. */
    double
    cost(unsigned instances, Tick duration) const
    {
        const double hours = ticksToSec(duration) / 3600.0;
        return pricePerInstanceHour * static_cast<double>(instances) *
               hours;
    }
};

/**
 * AWS-Lambda-style per-request pricing.
 */
struct LambdaCostModel
{
    /** Price per million invocations. */
    double pricePerMillionRequests = 0.20;

    /** Price per GB-second of billed execution. */
    double pricePerGbSecond = 0.0000166667;

    /** Configured function memory in GB. */
    double memoryGb = 1.5;

    /** Billing granularity (2019: 100 ms round-up). */
    Tick billingQuantum = 100 * kTicksPerMs;

    /** Billed duration of one invocation running @p duration. */
    Tick
    billedDuration(Tick duration) const
    {
        if (billingQuantum == 0)
            return duration;
        const Tick q = billingQuantum;
        return ((duration + q - 1) / q) * q;
    }

    /**
     * Total cost of @p invocations whose *summed billed* duration is
     * @p billed_total.
     */
    double
    cost(std::uint64_t invocations, Tick billed_total) const
    {
        const double req_cost = pricePerMillionRequests *
                                static_cast<double>(invocations) / 1e6;
        const double gbs =
            ticksToSec(billed_total) * memoryGb * pricePerGbSecond;
        return req_cost + gbs;
    }
};

} // namespace uqsim::serverless

#endif // UQSIM_SERVERLESS_COST_MODEL_HH
