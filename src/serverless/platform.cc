#include "serverless/platform.hh"

#include <utility>

#include "core/distributions.hh"
#include "core/logging.hh"

namespace uqsim::serverless {

namespace {

/** Dispatch delay distribution: warm path with a cold-start mixture. */
Dist
dispatchDist(const LambdaConfig &c)
{
    const Dist warm = Dist::lognormalMean(c.dispatchMeanUs * 1000.0,
                                          c.dispatchSigma);
    if (c.coldStartProb <= 0.0)
        return warm;
    const Dist cold = Dist::lognormalMean(
        c.coldStartMeanMs * 1e6, 0.3);
    return Dist::mixture({{1.0 - c.coldStartProb, warm},
                          {c.coldStartProb, cold}});
}

/** The injected state-store tier definition. */
service::ServiceDef
storeDef(const LambdaConfig &c)
{
    service::ServiceDef def;
    def.name = c.storeName;
    def.kind = service::ServiceKind::Database;

    cpu::ServiceProfile p;
    p.name = c.storeName;
    p.codeFootprintKb = 400.0;
    p.branchEntropy = 0.15;
    p.memIntensity = 0.35;
    p.kernelShare = 0.45;
    p.libShare = 0.25;
    def.profile = p;

    if (c.stateStore == StateStoreKind::S3) {
        // Persistent object store: ~10ms per op over HTTPS, with
        // per-partition request-rate limits (few worker slots).
        def.handler.delay(Dist::lognormalMean(10.0 * 1e6, 0.5))
            .compute(Dist::constant(20000.0));
        def.threadsPerInstance = 24;
        def.protocol = rpc::ProtocolModel::restHttp1();
        def.defaultResponseBytes = 8 * kKiB;
    } else {
        // Remote memcached on extra EC2 instances: sub-ms ops.
        def.handler.delay(Dist::lognormalMean(0.35 * 1e6, 0.4))
            .compute(Dist::constant(8000.0));
        def.threadsPerInstance = 128;
        def.protocol = rpc::ProtocolModel::thrift();
        def.defaultResponseBytes = 8 * kKiB;
    }
    return def;
}

} // namespace

void
LambdaPlatform::applyToApp(service::App &app, const LambdaConfig &config,
                           cpu::Cluster &cluster)
{
    if (app.hasService(config.storeName))
        return; // already applied

    service::Microservice &store = app.addService(storeDef(config));
    for (unsigned i = 0; i < config.storeShards; ++i)
        store.addInstance(cluster.nextServerRoundRobin());

    const Dist dispatch = dispatchDist(config);

    for (service::Microservice *svc : app.services()) {
        if (svc->name() == config.storeName)
            continue;

        service::ServiceDef &def = svc->mutableDef();
        service::HandlerSpec rewritten;
        // Function dispatch: routing, container reuse or cold start.
        rewritten.delay(dispatch, /*is_network=*/true);
        // Read input state written by the upstream function (the entry
        // tier receives its input directly from the API gateway).
        if (svc->name() != app.entry())
            rewritten.call(config.storeName);
        for (const service::Stage &s : def.handler.stages)
            rewritten.add(s);
        // Persist output for downstream functions / the response path.
        rewritten.call(config.storeName);
        def.handler = std::move(rewritten);

        // The provider launches function instances on demand: per-
        // container concurrency stops being the limit.
        svc->setThreadsPerInstance(1024);
    }
}

std::uint64_t
LambdaPlatform::invocations(const service::App &app,
                            const std::string &store_name)
{
    std::uint64_t total = 0;
    for (const service::Microservice *svc :
         const_cast<service::App &>(app).services()) {
        if (svc->name() == store_name)
            continue;
        for (const auto &inst : svc->instances())
            total += inst->served();
    }
    return total;
}

Tick
LambdaPlatform::billedDuration(const service::App &app,
                               const LambdaCostModel &cost,
                               const std::string &store_name)
{
    Tick total = 0;
    for (const service::Microservice *svc :
         const_cast<service::App &>(app).services()) {
        if (svc->name() == store_name)
            continue;
        const Tick mean =
            static_cast<Tick>(svc->latency().mean());
        const Tick billed = cost.billedDuration(mean);
        std::uint64_t served = 0;
        for (const auto &inst : svc->instances())
            served += inst->served();
        total += billed * served;
    }
    return total;
}

} // namespace uqsim::serverless
