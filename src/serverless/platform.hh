/**
 * @file
 * Serverless execution platform (Sec 7, Fig 21).
 *
 * Running a microservice graph on AWS-Lambda-style functions changes
 * three things relative to reserved containers:
 *   1. every RPC becomes a function invocation with dispatch latency,
 *      placement variance, and occasional cold starts;
 *   2. functions are ephemeral: state between dependent services
 *      passes through a store - S3 (slow, rate-limited) by default or
 *      remote memory (the paper's tuned configuration);
 *   3. billing is per request + GB-second instead of instance-hours,
 *      and capacity follows load instantly (no autoscaler lag).
 *
 * LambdaPlatform::applyToApp() rewrites a built application in place:
 * it inserts dispatch-delay stages and state-store calls around every
 * handler, adds the state-store tier, and lifts per-instance
 * concurrency limits (the provider launches more function instances on
 * demand).
 */

#ifndef UQSIM_SERVERLESS_PLATFORM_HH
#define UQSIM_SERVERLESS_PLATFORM_HH

#include <cstdint>
#include <string>

#include "core/types.hh"
#include "cpu/server.hh"
#include "serverless/cost_model.hh"
#include "service/app.hh"

namespace uqsim::serverless {

/** Where inter-function state lives. */
enum class StateStoreKind
{
    S3,           ///< persistent object store: slow, rate-limited
    RemoteMemory, ///< memcached on extra EC2 instances: fast
};

/**
 * Lambda platform configuration.
 */
struct LambdaConfig
{
    /** Mean function dispatch latency (routing + container reuse). */
    double dispatchMeanUs = 900.0;

    /** Dispatch heavy-tail sigma (placement variance, co-location). */
    double dispatchSigma = 0.8;

    /** Probability an invocation cold-starts. */
    double coldStartProb = 0.015;

    /** Cold-start delay. */
    double coldStartMeanMs = 180.0;

    /** Inter-function state store. */
    StateStoreKind stateStore = StateStoreKind::S3;

    /** State-store shards (S3 partitions / memcached instances). */
    unsigned storeShards = 8;

    /** Name given to the injected state-store tier. */
    std::string storeName = "state-store";
};

/**
 * Applies the Lambda execution model to a built App.
 */
class LambdaPlatform
{
  public:
    /**
     * Rewrite @p app for serverless execution. @p store_servers hosts
     * the state-store shards (for RemoteMemory these represent the
     * "four additional EC2 instances" of the paper). Call *before*
     * injecting load; idempotent per app.
     */
    static void applyToApp(service::App &app, const LambdaConfig &config,
                           cpu::Cluster &cluster);

    /**
     * Invocation count across all function tiers of @p app (every
     * served request at every rewritten tier is one invocation).
     */
    static std::uint64_t invocations(const service::App &app,
                                     const std::string &store_name);

    /**
     * Total billed duration under @p cost across all invocations,
     * using each tier's measured mean latency (rounded up to the
     * billing quantum per invocation).
     */
    static Tick billedDuration(const service::App &app,
                               const LambdaCostModel &cost,
                               const std::string &store_name);
};

} // namespace uqsim::serverless

#endif // UQSIM_SERVERLESS_PLATFORM_HH
