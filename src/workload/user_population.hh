/**
 * @file
 * User populations with configurable request skew (Sec 8, Fig 22b).
 *
 * The paper defines skew as [100 - u] where u is the percentage of
 * users initiating 90% of total requests: skew 0% is uniform, and at
 * high skew a tiny fraction of "synthetic heavy" users dominates the
 * load. Skewed users concentrate on the same database/cache shards,
 * which is what collapses goodput in Fig 22b.
 */

#ifndef UQSIM_WORKLOAD_USER_POPULATION_HH
#define UQSIM_WORKLOAD_USER_POPULATION_HH

#include <cstdint>

#include "core/distributions.hh"
#include "core/rng.hh"

namespace uqsim::workload {

/**
 * Draws user ids in [0, size) under a configurable skew model.
 */
class UserPopulation
{
  public:
    /** Uniform population of @p size users. */
    static UserPopulation uniform(std::uint64_t size);

    /**
     * Zipf-distributed popularity with exponent @p s (the "real
     * traffic" case: ~5% of users issue >30% of requests at s~0.9).
     */
    static UserPopulation zipf(std::uint64_t size, double s);

    /**
     * Paper-style skew: @p skew_percent in [0, 99]. The hottest
     * u = (100 - skew)% of users receive 90% of requests (uniformly
     * within each class). skew 0 degenerates to uniform.
     */
    static UserPopulation skewed(std::uint64_t size, double skew_percent);

    /** Draw one user id. */
    std::uint64_t sample(Rng &rng) const;

    /** Population size. */
    std::uint64_t size() const { return size_; }

    /**
     * Analytic fraction of requests landing on the single hottest of
     * @p shards uniform hash shards (used by tests and capacity
     * estimates).
     */
    double hottestShardLoad(unsigned shards) const;

  private:
    enum class Kind
    {
        Uniform,
        Zipf,
        TwoClass,
    };

    UserPopulation(Kind kind, std::uint64_t size);

    Kind kind_;
    std::uint64_t size_;
    std::shared_ptr<ZipfDistribution> zipf_;
    std::uint64_t hotUsers_ = 0;
    double hotMass_ = 0.9;
};

} // namespace uqsim::workload

#endif // UQSIM_WORKLOAD_USER_POPULATION_HH
