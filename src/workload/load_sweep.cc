#include "workload/load_sweep.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::workload {

LoadResult
runLoad(service::App &app, double qps, Tick warmup, Tick measure,
        const QueryMix &mix, const UserPopulation &users,
        std::uint64_t seed)
{
    SimContext &sim = app.ctx();
    OpenLoopGenerator gen(app, mix, users, seed);
    gen.setQps(qps);
    gen.start();
    sim.runFor(warmup);
    app.statReset();
    const Tick t0 = sim.now();
    sim.runFor(measure);
    gen.stop();
    // Give in-flight requests a bounded drain window so completions
    // near the edge are not lost (open-loop: new arrivals stopped).
    // Rates are computed over the arrival window only: the drained
    // completions belong to arrivals inside [t0, t0+measure).
    sim.runFor(measure / 5);
    (void)t0;
    const double span_sec = ticksToSec(measure);

    LoadResult r;
    r.offeredQps = qps;
    r.completed = app.completed();
    r.dropped = app.droppedRequests();
    const auto &h = app.endToEndLatency();
    r.p50 = h.p50();
    r.p95 = h.p95();
    r.p99 = h.p99();
    r.meanMs = ticksToMs(static_cast<Tick>(h.mean()));
    r.achievedQps =
        span_sec > 0.0 ? static_cast<double>(r.completed) / span_sec : 0.0;
    r.goodputQps = span_sec > 0.0
                       ? static_cast<double>(app.completedWithinQos()) /
                             span_sec
                       : 0.0;
    r.meanUtilization = app.cluster().averageUtilization();
    const double net = app.meanNetworkTimePerRequest();
    const double comp = app.meanAppTimePerRequest();
    r.networkShare = (net + comp) > 0.0 ? net / (net + comp) : 0.0;
    return r;
}

double
findMaxQps(const std::function<bool(double)> &feasible, double lo,
           double hi, int iterations)
{
    if (hi <= lo)
        fatal("findMaxQps with hi <= lo");
    if (!feasible(lo))
        return lo;
    if (feasible(hi))
        return hi;
    double good = lo, bad = hi;
    for (int i = 0; i < iterations; ++i) {
        const double mid = 0.5 * (good + bad);
        if (feasible(mid))
            good = mid;
        else
            bad = mid;
    }
    return good;
}

} // namespace uqsim::workload
