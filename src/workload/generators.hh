/**
 * @file
 * Open- and closed-loop workload generators.
 *
 * The paper drives all services with open-loop generators (requests
 * arrive regardless of completions - the right model for tail-latency
 * studies) plus real user traffic for the Social Network deployment.
 * The open-loop generator here is Poisson with a time-varying rate
 * hook used for the diurnal replay of Fig 21.
 */

#ifndef UQSIM_WORKLOAD_GENERATORS_HH
#define UQSIM_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "core/types.hh"
#include "service/app.hh"
#include "workload/user_population.hh"

namespace uqsim::workload {

// -- Arrival processes --------------------------------------------------

/**
 * Which stochastic process produces request inter-arrival gaps.
 *
 * Poisson is the legacy default and the only process the open-loop
 * generator runs when no ArrivalProcess is attached — that path is
 * byte-identical to every pre-arrival-library build. The other three
 * model the load regimes the paper's cluster-management studies need:
 * MMPP for bursty traffic, diurnal curves for the Fig 21 replay, and
 * flash crowds for sudden-overload experiments.
 */
enum class ArrivalKind
{
    Poisson, ///< homogeneous Poisson at the configured rate
    Mmpp,    ///< 2-state Markov-modulated Poisson (bursty)
    Diurnal, ///< rate-modulated Poisson over a compressed day curve
    Flash,   ///< Poisson with a ramped flash-crowd multiplier
};

/** Resolve an arrival-process name; @return false if unknown. */
bool arrivalKindByName(const std::string &name, ArrivalKind &out);

/** The canonical name of @p kind ("poisson", "mmpp", ...). */
const char *arrivalKindName(ArrivalKind kind);

/**
 * Declarative arrival-process selection (the scenario `arrival:`
 * block / the --arrival-* flags). Fields beyond the selected kind are
 * ignored; every default is valid.
 */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;

    // -- MMPP(2) ----------------------------------------------------
    /** Peak-state rate multiplier over the base state (>= 1). */
    double burst = 4.0;
    /** Stationary fraction of time spent in the peak state, (0, 1). */
    double duty = 0.1;
    /** Mean sojourn in the peak state per visit. */
    Tick dwell = 200 * kTicksPerMs;

    // -- diurnal ----------------------------------------------------
    /** Replay window mapped to one compressed "day". */
    Tick period = 10 * kTicksPerSec;
    /** Night-time fraction of peak load, (0, 1]. */
    double low = 0.2;

    // -- flash crowd ------------------------------------------------
    Tick flashAt = 2 * kTicksPerSec;   ///< onset of the crowd
    Tick flashRamp = 200 * kTicksPerMs; ///< linear ramp-up time
    double flashMult = 8.0;            ///< peak rate multiplier (>= 1)
    Tick flashHold = 1 * kTicksPerSec; ///< time at peak before decay
};

/**
 * A stream of inter-arrival gaps with its own RNG stream, so that
 * attaching a process never perturbs the generator's query-mix or
 * user-sampling draws and generation stays seed-deterministic.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * The next inter-arrival gap (>= 1 tick) for an arrival scheduled
     * at absolute time @p now, advancing the process state.
     */
    virtual Tick nextGap(Tick now) = 0;

    /** Long-run mean arrival rate in requests/second. */
    virtual double meanRate() const = 0;

    virtual ArrivalKind kind() const = 0;

    /**
     * Build the process @p config selects with long-run mean rate
     * @p qps (flash crowds: base rate @p qps, the crowd adds load) and
     * a dedicated RNG stream derived from @p seed.
     */
    static std::unique_ptr<ArrivalProcess>
    make(const ArrivalConfig &config, double qps, std::uint64_t seed);
};

/** Homogeneous Poisson arrivals. */
class PoissonProcess final : public ArrivalProcess
{
  public:
    PoissonProcess(double qps, std::uint64_t seed);

    Tick nextGap(Tick now) override;
    double meanRate() const override { return qps_; }
    ArrivalKind kind() const override { return ArrivalKind::Poisson; }

  private:
    double qps_;
    Rng rng_;
};

/**
 * 2-state Markov-modulated Poisson process. The modulating chain
 * alternates exponentially distributed sojourns in a base state (rate
 * lowRate()) and a peak state (rate highRate() = burst * lowRate());
 * rates are solved so the stationary mean is exactly the requested
 * qps. Sampling is exact: a gap drawn in one state that crosses the
 * next modulation switch is discarded at the switch point and redrawn
 * at the new state's rate (memorylessness makes the restart exact).
 */
class MmppProcess final : public ArrivalProcess
{
  public:
    /**
     * @param qps    stationary mean arrival rate
     * @param burst  peak/base rate ratio (>= 1; 1 = pure Poisson)
     * @param duty   stationary peak-state time fraction, in (0, 1)
     * @param dwell  mean peak-state sojourn per visit (> 0)
     */
    MmppProcess(double qps, double burst, double duty, Tick dwell,
                std::uint64_t seed);

    Tick nextGap(Tick now) override;
    double meanRate() const override { return qps_; }
    ArrivalKind kind() const override { return ArrivalKind::Mmpp; }

    /** Base-state arrival rate (req/s). */
    double lowRate() const { return lowRate_; }

    /** Peak-state arrival rate (req/s). */
    double highRate() const { return highRate_; }

    /**
     * The asymptotic index of dispersion of counts,
     *   IDC = 1 + 2 pi_l pi_h (r_h - r_l)^2 / (mean * (q_lh + q_hl)),
     * the closed-form burstiness index the validation tier pins the
     * empirical window-count dispersion against. 1 when burst == 1.
     */
    double idc() const;

  private:
    double rate(bool high) const { return high ? highRate_ : lowRate_; }

    double qps_;
    double lowRate_;
    double highRate_;
    double dwellLowSec_;  ///< mean base-state sojourn (seconds)
    double dwellHighSec_; ///< mean peak-state sojourn (seconds)
    Rng rng_;
    bool high_ = false;       ///< current modulation state
    double switchAt_ = 0.0;   ///< next state switch (ticks, fractional)
};

/**
 * Rate-modulated ("nonhomogeneous") Poisson arrivals: each gap is
 * drawn exponentially at the multiplier-scaled rate in effect when it
 * is drawn — the same discretization the legacy setRateShape() hook
 * uses; exact whenever gaps are short against the modulation period.
 */
class ShapedProcess final : public ArrivalProcess
{
  public:
    /**
     * @param qps    mean rate when the multiplier averages 1
     * @param shape  rate multiplier at an absolute tick
     * @param mean   long-run average of @p shape (for meanRate())
     */
    ShapedProcess(double qps, ArrivalKind kind,
                  std::function<double(Tick)> shape, double mean,
                  std::uint64_t seed);

    Tick nextGap(Tick now) override;
    double meanRate() const override { return qps_ * shapeMean_; }
    ArrivalKind kind() const override { return kind_; }

  private:
    double qps_;
    ArrivalKind kind_;
    std::function<double(Tick)> shape_;
    double shapeMean_;
    Rng rng_;
};

/**
 * The flash-crowd rate multiplier: 1 until @p at, a linear ramp to
 * @p mult over @p ramp, a plateau of @p hold, then an exponential
 * decay back toward 1 with time constant @p ramp.
 */
double flashMultiplierAt(Tick t, Tick at, Tick ramp, double mult,
                         Tick hold);

/**
 * Weighted query-type mix.
 */
class QueryMix
{
  public:
    /** Uniform over the app's registered query types. */
    static QueryMix fromApp(const service::App &app);

    /** Explicit weights (normalized internally). */
    explicit QueryMix(std::vector<double> weights);

    /** Draw a query-type index. */
    unsigned sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Open-loop Poisson request generator.
 */
class OpenLoopGenerator
{
  public:
    OpenLoopGenerator(service::App &app, QueryMix mix, UserPopulation users,
                      std::uint64_t seed);

    /** Set the arrival rate (may change while running). */
    void setQps(double qps);
    double qps() const { return qps_; }

    /**
     * Optional time-varying rate multiplier (diurnal replay): called
     * with the current tick, scales the base rate.
     */
    void setRateShape(std::function<double(Tick)> shape);

    /**
     * Drive inter-arrival gaps from @p process instead of the built-in
     * Poisson sampler. The process owns the rate (qps()/setRateShape()
     * no longer apply) and draws from its own RNG stream, so the
     * generator's query-mix/user draws are unperturbed. Null restores
     * the built-in byte-identical legacy path.
     */
    void setArrivalProcess(std::unique_ptr<ArrivalProcess> process);

    /** The attached arrival process (null = built-in Poisson). */
    const ArrivalProcess *arrivalProcess() const { return arrival_.get(); }

    /** Begin injecting; keeps going until stop(). */
    void start();

    /** Cease injecting (in-flight requests drain on their own). */
    void stop();

    bool running() const { return running_; }

    std::uint64_t generated() const { return generated_; }

  private:
    void scheduleNext();

    service::App &app_;
    QueryMix mix_;
    UserPopulation users_;
    Rng rng_;
    double qps_ = 100.0;
    std::function<double(Tick)> shape_;
    std::unique_ptr<ArrivalProcess> arrival_;
    bool running_ = false;
    std::uint64_t generated_ = 0;
    EventHandle pending_;
};

/**
 * Closed-loop generator: @p concurrency virtual users, each reissuing
 * after a think time. Used to contrast with open-loop behaviour in
 * tests and ablations.
 */
class ClosedLoopGenerator
{
  public:
    ClosedLoopGenerator(service::App &app, QueryMix mix,
                        UserPopulation users, unsigned concurrency,
                        Dist think_time_ns, std::uint64_t seed);

    void start();
    void stop();

    std::uint64_t generated() const { return generated_; }

  private:
    void issueOne(std::uint64_t user);

    service::App &app_;
    QueryMix mix_;
    UserPopulation users_;
    unsigned concurrency_;
    Dist thinkTime_;
    Rng rng_;
    bool running_ = false;
    std::uint64_t generated_ = 0;
};

/**
 * Compressed diurnal load shape (Fig 21 bottom): two peaks over the
 * replay window, normalized to [low, 1].
 */
class DiurnalShape
{
  public:
    /**
     * @param period   replay window mapped to one "day"
     * @param low      night-time fraction of peak load
     */
    DiurnalShape(Tick period, double low);

    /** Rate multiplier at time @p t. */
    double at(Tick t) const;

    /**
     * The curve's average multiplier over one period (deterministic
     * trapezoid sum). The diurnal ArrivalProcess divides by this so
     * its long-run mean rate equals the configured qps exactly.
     */
    double meanMultiplier() const;

  private:
    Tick period_;
    double low_;
};

} // namespace uqsim::workload

#endif // UQSIM_WORKLOAD_GENERATORS_HH
