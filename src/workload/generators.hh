/**
 * @file
 * Open- and closed-loop workload generators.
 *
 * The paper drives all services with open-loop generators (requests
 * arrive regardless of completions - the right model for tail-latency
 * studies) plus real user traffic for the Social Network deployment.
 * The open-loop generator here is Poisson with a time-varying rate
 * hook used for the diurnal replay of Fig 21.
 */

#ifndef UQSIM_WORKLOAD_GENERATORS_HH
#define UQSIM_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/rng.hh"
#include "core/types.hh"
#include "service/app.hh"
#include "workload/user_population.hh"

namespace uqsim::workload {

/**
 * Weighted query-type mix.
 */
class QueryMix
{
  public:
    /** Uniform over the app's registered query types. */
    static QueryMix fromApp(const service::App &app);

    /** Explicit weights (normalized internally). */
    explicit QueryMix(std::vector<double> weights);

    /** Draw a query-type index. */
    unsigned sample(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Open-loop Poisson request generator.
 */
class OpenLoopGenerator
{
  public:
    OpenLoopGenerator(service::App &app, QueryMix mix, UserPopulation users,
                      std::uint64_t seed);

    /** Set the arrival rate (may change while running). */
    void setQps(double qps);
    double qps() const { return qps_; }

    /**
     * Optional time-varying rate multiplier (diurnal replay): called
     * with the current tick, scales the base rate.
     */
    void setRateShape(std::function<double(Tick)> shape);

    /** Begin injecting; keeps going until stop(). */
    void start();

    /** Cease injecting (in-flight requests drain on their own). */
    void stop();

    bool running() const { return running_; }

    std::uint64_t generated() const { return generated_; }

  private:
    void scheduleNext();

    service::App &app_;
    QueryMix mix_;
    UserPopulation users_;
    Rng rng_;
    double qps_ = 100.0;
    std::function<double(Tick)> shape_;
    bool running_ = false;
    std::uint64_t generated_ = 0;
    EventHandle pending_;
};

/**
 * Closed-loop generator: @p concurrency virtual users, each reissuing
 * after a think time. Used to contrast with open-loop behaviour in
 * tests and ablations.
 */
class ClosedLoopGenerator
{
  public:
    ClosedLoopGenerator(service::App &app, QueryMix mix,
                        UserPopulation users, unsigned concurrency,
                        Dist think_time_ns, std::uint64_t seed);

    void start();
    void stop();

    std::uint64_t generated() const { return generated_; }

  private:
    void issueOne(std::uint64_t user);

    service::App &app_;
    QueryMix mix_;
    UserPopulation users_;
    unsigned concurrency_;
    Dist thinkTime_;
    Rng rng_;
    bool running_ = false;
    std::uint64_t generated_ = 0;
};

/**
 * Compressed diurnal load shape (Fig 21 bottom): two peaks over the
 * replay window, normalized to [low, 1].
 */
class DiurnalShape
{
  public:
    /**
     * @param period   replay window mapped to one "day"
     * @param low      night-time fraction of peak load
     */
    DiurnalShape(Tick period, double low);

    /** Rate multiplier at time @p t. */
    double at(Tick t) const;

  private:
    Tick period_;
    double low_;
};

} // namespace uqsim::workload

#endif // UQSIM_WORKLOAD_GENERATORS_HH
