#include "workload/user_population.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace uqsim::workload {

UserPopulation::UserPopulation(Kind kind, std::uint64_t size)
    : kind_(kind), size_(size)
{
    if (size == 0)
        fatal("UserPopulation with zero users");
}

UserPopulation
UserPopulation::uniform(std::uint64_t size)
{
    return UserPopulation(Kind::Uniform, size);
}

UserPopulation
UserPopulation::zipf(std::uint64_t size, double s)
{
    UserPopulation p(Kind::Zipf, size);
    p.zipf_ = std::make_shared<ZipfDistribution>(
        static_cast<std::size_t>(size), s);
    return p;
}

UserPopulation
UserPopulation::skewed(std::uint64_t size, double skew_percent)
{
    if (skew_percent < 0.0 || skew_percent > 99.0)
        fatal("skew percent must be in [0, 99]");
    if (skew_percent == 0.0)
        return uniform(size);
    UserPopulation p(Kind::TwoClass, size);
    const double u = (100.0 - skew_percent) / 100.0;
    p.hotUsers_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(u * static_cast<double>(size)));
    p.hotMass_ = 0.9;
    return p;
}

std::uint64_t
UserPopulation::sample(Rng &rng) const
{
    switch (kind_) {
      case Kind::Uniform:
        return rng.uniformInt(size_);
      case Kind::Zipf:
        return static_cast<std::uint64_t>(zipf_->sample(rng));
      case Kind::TwoClass:
        if (rng.bernoulli(hotMass_))
            return rng.uniformInt(hotUsers_);
        return rng.uniformInt(size_);
    }
    panic("unhandled population kind");
}

double
UserPopulation::hottestShardLoad(unsigned shards) const
{
    if (shards == 0)
        fatal("hottestShardLoad with zero shards");
    switch (kind_) {
      case Kind::Uniform:
        return 1.0 / static_cast<double>(shards);
      case Kind::Zipf: {
        // Hottest shard holds at least the hottest user.
        const double top = zipf_->topKMass(1);
        return std::max(top, 1.0 / static_cast<double>(shards));
      }
      case Kind::TwoClass: {
        // Hot users hash uniformly over shards; if fewer hot users
        // than shards, one shard absorbs at least hotMass/hotUsers.
        const double hot_per_shard =
            hotMass_ /
            static_cast<double>(std::min<std::uint64_t>(hotUsers_, shards));
        return hot_per_shard +
               (1.0 - hotMass_) / static_cast<double>(shards);
      }
    }
    panic("unhandled population kind");
}

} // namespace uqsim::workload
