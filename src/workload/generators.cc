#include "workload/generators.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace uqsim::workload {

QueryMix
QueryMix::fromApp(const service::App &app)
{
    std::vector<double> weights;
    for (const auto &qt : app.queryTypes())
        weights.push_back(qt.weight);
    if (weights.empty())
        weights.push_back(1.0);
    return QueryMix(std::move(weights));
}

QueryMix::QueryMix(std::vector<double> weights)
{
    if (weights.empty())
        fatal("QueryMix with no weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("QueryMix with negative weight");
        total += w;
    }
    if (total <= 0.0)
        fatal("QueryMix with zero total weight");
    double cum = 0.0;
    for (double w : weights) {
        cum += w / total;
        cdf_.push_back(cum);
    }
    cdf_.back() = 1.0;
}

unsigned
QueryMix::sample(Rng &rng) const
{
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<unsigned>(
        std::min<std::size_t>(it - cdf_.begin(), cdf_.size() - 1));
}

OpenLoopGenerator::OpenLoopGenerator(service::App &app, QueryMix mix,
                                     UserPopulation users,
                                     std::uint64_t seed)
    : app_(app), mix_(std::move(mix)), users_(std::move(users)), rng_(seed)
{}

void
OpenLoopGenerator::setQps(double qps)
{
    if (qps <= 0.0)
        fatal("OpenLoopGenerator qps must be positive");
    qps_ = qps;
}

void
OpenLoopGenerator::setRateShape(std::function<double(Tick)> shape)
{
    shape_ = std::move(shape);
}

void
OpenLoopGenerator::start()
{
    if (running_)
        return;
    running_ = true;
    scheduleNext();
}

void
OpenLoopGenerator::stop()
{
    running_ = false;
    pending_.cancel();
}

void
OpenLoopGenerator::scheduleNext()
{
    if (!running_)
        return;
    double rate = qps_;
    if (shape_)
        rate *= std::max(1e-6, shape_(app_.ctx().now()));
    const double mean_gap_ns =
        static_cast<double>(kTicksPerSec) / rate;
    const Tick gap = std::max<Tick>(
        1, static_cast<Tick>(rng_.exponential(mean_gap_ns)));
    pending_ = app_.ctx().schedule(gap, [this]() {
        if (!running_)
            return;
        const unsigned qt = mix_.sample(rng_);
        const std::uint64_t user = users_.sample(rng_);
        app_.inject(qt, user);
        ++generated_;
        scheduleNext();
    });
}

ClosedLoopGenerator::ClosedLoopGenerator(service::App &app, QueryMix mix,
                                         UserPopulation users,
                                         unsigned concurrency,
                                         Dist think_time_ns,
                                         std::uint64_t seed)
    : app_(app), mix_(std::move(mix)), users_(std::move(users)),
      concurrency_(concurrency), thinkTime_(std::move(think_time_ns)),
      rng_(seed)
{
    if (concurrency == 0)
        fatal("ClosedLoopGenerator with zero concurrency");
}

void
ClosedLoopGenerator::start()
{
    if (running_)
        return;
    running_ = true;
    for (unsigned i = 0; i < concurrency_; ++i)
        issueOne(users_.sample(rng_));
}

void
ClosedLoopGenerator::stop()
{
    running_ = false;
}

void
ClosedLoopGenerator::issueOne(std::uint64_t user)
{
    if (!running_)
        return;
    const unsigned qt = mix_.sample(rng_);
    ++generated_;
    app_.inject(qt, user, [this](const service::Request &) {
        if (!running_)
            return;
        const Tick think = static_cast<Tick>(
            std::max(0.0, thinkTime_.sample(rng_)));
        app_.ctx().schedule(think, [this]() {
            issueOne(users_.sample(rng_));
        });
    });
}

DiurnalShape::DiurnalShape(Tick period, double low)
    : period_(period), low_(low)
{
    if (period == 0)
        fatal("DiurnalShape with zero period");
    if (low <= 0.0 || low > 1.0)
        fatal("DiurnalShape low fraction must be in (0, 1]");
}

double
DiurnalShape::at(Tick t) const
{
    // A day compressed into `period_`: quiet night, morning ramp, a
    // midday peak, an evening peak slightly higher, then falloff.
    const double x = static_cast<double>(t % period_) /
                     static_cast<double>(period_); // [0,1) day fraction
    const double base =
        0.5 * (1.0 - std::cos(2.0 * M_PI * x));       // 0 at night, 1 midday
    const double evening =
        0.35 * std::exp(-std::pow((x - 0.8) / 0.07, 2.0)); // evening bump
    const double v = std::min(1.0, base + evening);
    return low_ + (1.0 - low_) * v;
}

} // namespace uqsim::workload
