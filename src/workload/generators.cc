#include "workload/generators.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace uqsim::workload {

// -- Arrival processes --------------------------------------------------

bool
arrivalKindByName(const std::string &name, ArrivalKind &out)
{
    if (name == "poisson")
        out = ArrivalKind::Poisson;
    else if (name == "mmpp")
        out = ArrivalKind::Mmpp;
    else if (name == "diurnal")
        out = ArrivalKind::Diurnal;
    else if (name == "flash")
        out = ArrivalKind::Flash;
    else
        return false;
    return true;
}

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Mmpp:
        return "mmpp";
      case ArrivalKind::Diurnal:
        return "diurnal";
      case ArrivalKind::Flash:
        return "flash";
    }
    return "unknown";
}

namespace {

/** An exponential gap in ticks at @p rate req/s, clamped >= 1. */
Tick
expGapTicks(Rng &rng, double rate)
{
    const double mean_ns = static_cast<double>(kTicksPerSec) / rate;
    return std::max<Tick>(1, static_cast<Tick>(rng.exponential(mean_ns)));
}

} // namespace

PoissonProcess::PoissonProcess(double qps, std::uint64_t seed)
    : qps_(qps), rng_(seed)
{
    if (qps <= 0.0)
        fatal("PoissonProcess qps must be positive");
}

Tick
PoissonProcess::nextGap(Tick)
{
    return expGapTicks(rng_, qps_);
}

MmppProcess::MmppProcess(double qps, double burst, double duty,
                         Tick dwell, std::uint64_t seed)
    : qps_(qps), rng_(seed)
{
    if (qps <= 0.0)
        fatal("MmppProcess qps must be positive");
    if (burst < 1.0)
        fatal("MmppProcess burst must be >= 1");
    if (duty <= 0.0 || duty >= 1.0)
        fatal("MmppProcess duty must be in (0, 1)");
    if (dwell == 0)
        fatal("MmppProcess dwell must be positive");
    // Solve the two state rates so the stationary mean
    //   (1 - duty) * low + duty * high  ==  qps,  high = burst * low.
    lowRate_ = qps / (1.0 - duty + duty * burst);
    highRate_ = burst * lowRate_;
    // The chain spends duty of its time in the peak state, so the mean
    // base-state sojourn is dwell * (1 - duty) / duty.
    dwellHighSec_ = ticksToSec(dwell);
    dwellLowSec_ = dwellHighSec_ * (1.0 - duty) / duty;
    switchAt_ = rng_.exponential(dwellLowSec_ *
                                 static_cast<double>(kTicksPerSec));
}

Tick
MmppProcess::nextGap(Tick now)
{
    // Draw at the current state's rate; a draw that crosses the next
    // modulation switch is abandoned at the switch and redrawn at the
    // new state's rate — exact for exponential gaps.
    double t = static_cast<double>(now);
    for (;;) {
        const double mean_ns =
            static_cast<double>(kTicksPerSec) / rate(high_);
        const double gap = rng_.exponential(mean_ns);
        if (t + gap <= switchAt_) {
            t += gap;
            const double total = t - static_cast<double>(now);
            return std::max<Tick>(1, static_cast<Tick>(total));
        }
        t = switchAt_;
        high_ = !high_;
        const double dwell_sec = high_ ? dwellHighSec_ : dwellLowSec_;
        switchAt_ = t + rng_.exponential(
                            dwell_sec *
                            static_cast<double>(kTicksPerSec));
    }
}

double
MmppProcess::idc() const
{
    if (highRate_ == lowRate_)
        return 1.0;
    const double q_lh = 1.0 / dwellLowSec_;  // base -> peak
    const double q_hl = 1.0 / dwellHighSec_; // peak -> base
    const double pi_h = q_lh / (q_lh + q_hl);
    const double pi_l = 1.0 - pi_h;
    const double d = highRate_ - lowRate_;
    return 1.0 + 2.0 * pi_l * pi_h * d * d / (qps_ * (q_lh + q_hl));
}

ShapedProcess::ShapedProcess(double qps, ArrivalKind kind,
                             std::function<double(Tick)> shape,
                             double mean, std::uint64_t seed)
    : qps_(qps), kind_(kind), shape_(std::move(shape)),
      shapeMean_(mean), rng_(seed)
{
    if (qps <= 0.0)
        fatal("ShapedProcess qps must be positive");
    if (!shape_)
        fatal("ShapedProcess needs a shape");
}

Tick
ShapedProcess::nextGap(Tick now)
{
    const double rate = qps_ * std::max(1e-6, shape_(now));
    return expGapTicks(rng_, rate);
}

double
flashMultiplierAt(Tick t, Tick at, Tick ramp, double mult, Tick hold)
{
    if (t < at)
        return 1.0;
    const double extra = mult - 1.0;
    if (t < at + ramp)
        return 1.0 + extra * static_cast<double>(t - at) /
                         static_cast<double>(ramp);
    if (t < at + ramp + hold)
        return mult;
    const double fall = static_cast<double>(t - (at + ramp + hold)) /
                        static_cast<double>(ramp);
    return 1.0 + extra * std::exp(-fall);
}

std::unique_ptr<ArrivalProcess>
ArrivalProcess::make(const ArrivalConfig &config, double qps,
                     std::uint64_t seed)
{
    switch (config.kind) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonProcess>(qps, seed);
      case ArrivalKind::Mmpp:
        return std::make_unique<MmppProcess>(qps, config.burst,
                                             config.duty, config.dwell,
                                             seed);
      case ArrivalKind::Diurnal: {
        const DiurnalShape shape(config.period, config.low);
        // Normalize by the curve's own mean so the long-run rate is
        // exactly qps, not qps times the (parameter-dependent) curve
        // average.
        const double mean = shape.meanMultiplier();
        return std::make_unique<ShapedProcess>(
            qps, ArrivalKind::Diurnal,
            [shape, mean](Tick t) { return shape.at(t) / mean; }, 1.0,
            seed);
      }
      case ArrivalKind::Flash: {
        const Tick at = config.flashAt;
        const Tick ramp = std::max<Tick>(1, config.flashRamp);
        const double mult = config.flashMult;
        const Tick hold = config.flashHold;
        // The crowd is extra load by design; meanRate() reports the
        // base rate the multiplier returns to.
        return std::make_unique<ShapedProcess>(
            qps, ArrivalKind::Flash,
            [at, ramp, mult, hold](Tick t) {
                return flashMultiplierAt(t, at, ramp, mult, hold);
            },
            1.0, seed);
      }
    }
    fatal("unhandled arrival kind");
    return nullptr;
}

QueryMix
QueryMix::fromApp(const service::App &app)
{
    std::vector<double> weights;
    for (const auto &qt : app.queryTypes())
        weights.push_back(qt.weight);
    if (weights.empty())
        weights.push_back(1.0);
    return QueryMix(std::move(weights));
}

QueryMix::QueryMix(std::vector<double> weights)
{
    if (weights.empty())
        fatal("QueryMix with no weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("QueryMix with negative weight");
        total += w;
    }
    if (total <= 0.0)
        fatal("QueryMix with zero total weight");
    double cum = 0.0;
    for (double w : weights) {
        cum += w / total;
        cdf_.push_back(cum);
    }
    cdf_.back() = 1.0;
}

unsigned
QueryMix::sample(Rng &rng) const
{
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<unsigned>(
        std::min<std::size_t>(it - cdf_.begin(), cdf_.size() - 1));
}

OpenLoopGenerator::OpenLoopGenerator(service::App &app, QueryMix mix,
                                     UserPopulation users,
                                     std::uint64_t seed)
    : app_(app), mix_(std::move(mix)), users_(std::move(users)), rng_(seed)
{}

void
OpenLoopGenerator::setQps(double qps)
{
    if (qps <= 0.0)
        fatal("OpenLoopGenerator qps must be positive");
    qps_ = qps;
}

void
OpenLoopGenerator::setRateShape(std::function<double(Tick)> shape)
{
    shape_ = std::move(shape);
}

void
OpenLoopGenerator::setArrivalProcess(
    std::unique_ptr<ArrivalProcess> process)
{
    arrival_ = std::move(process);
}

void
OpenLoopGenerator::start()
{
    if (running_)
        return;
    running_ = true;
    scheduleNext();
}

void
OpenLoopGenerator::stop()
{
    running_ = false;
    pending_.cancel();
}

void
OpenLoopGenerator::scheduleNext()
{
    if (!running_)
        return;
    Tick gap;
    if (arrival_) {
        gap = arrival_->nextGap(app_.ctx().now());
    } else {
        double rate = qps_;
        if (shape_)
            rate *= std::max(1e-6, shape_(app_.ctx().now()));
        const double mean_gap_ns =
            static_cast<double>(kTicksPerSec) / rate;
        gap = std::max<Tick>(
            1, static_cast<Tick>(rng_.exponential(mean_gap_ns)));
    }
    pending_ = app_.ctx().schedule(gap, [this]() {
        if (!running_)
            return;
        const unsigned qt = mix_.sample(rng_);
        const std::uint64_t user = users_.sample(rng_);
        app_.inject(qt, user);
        ++generated_;
        scheduleNext();
    });
}

ClosedLoopGenerator::ClosedLoopGenerator(service::App &app, QueryMix mix,
                                         UserPopulation users,
                                         unsigned concurrency,
                                         Dist think_time_ns,
                                         std::uint64_t seed)
    : app_(app), mix_(std::move(mix)), users_(std::move(users)),
      concurrency_(concurrency), thinkTime_(std::move(think_time_ns)),
      rng_(seed)
{
    if (concurrency == 0)
        fatal("ClosedLoopGenerator with zero concurrency");
}

void
ClosedLoopGenerator::start()
{
    if (running_)
        return;
    running_ = true;
    for (unsigned i = 0; i < concurrency_; ++i)
        issueOne(users_.sample(rng_));
}

void
ClosedLoopGenerator::stop()
{
    running_ = false;
}

void
ClosedLoopGenerator::issueOne(std::uint64_t user)
{
    if (!running_)
        return;
    const unsigned qt = mix_.sample(rng_);
    ++generated_;
    app_.inject(qt, user, [this](const service::Request &) {
        if (!running_)
            return;
        const Tick think = static_cast<Tick>(
            std::max(0.0, thinkTime_.sample(rng_)));
        app_.ctx().schedule(think, [this]() {
            issueOne(users_.sample(rng_));
        });
    });
}

DiurnalShape::DiurnalShape(Tick period, double low)
    : period_(period), low_(low)
{
    if (period == 0)
        fatal("DiurnalShape with zero period");
    if (low <= 0.0 || low > 1.0)
        fatal("DiurnalShape low fraction must be in (0, 1]");
}

double
DiurnalShape::at(Tick t) const
{
    // A day compressed into `period_`: quiet night, morning ramp, a
    // midday peak, an evening peak slightly higher, then falloff.
    const double x = static_cast<double>(t % period_) /
                     static_cast<double>(period_); // [0,1) day fraction
    const double base =
        0.5 * (1.0 - std::cos(2.0 * M_PI * x));       // 0 at night, 1 midday
    const double evening =
        0.35 * std::exp(-std::pow((x - 0.8) / 0.07, 2.0)); // evening bump
    const double v = std::min(1.0, base + evening);
    return low_ + (1.0 - low_) * v;
}

double
DiurnalShape::meanMultiplier() const
{
    // Fixed-resolution trapezoid sum: deterministic for a given
    // (period, low), independent of the caller's tick rate.
    constexpr int kSamples = 4096;
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const Tick t = static_cast<Tick>(
            (static_cast<double>(period_) * i) / kSamples);
        sum += at(t);
    }
    return sum / kSamples;
}

} // namespace uqsim::workload
