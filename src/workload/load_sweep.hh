/**
 * @file
 * Measurement harness: drive an app at a fixed load and summarize, or
 * search for the maximum load sustaining QoS (the "max QPS under QoS"
 * metric of Figs 12-13 and 22).
 */

#ifndef UQSIM_WORKLOAD_LOAD_SWEEP_HH
#define UQSIM_WORKLOAD_LOAD_SWEEP_HH

#include <cstdint>
#include <functional>

#include "core/types.hh"
#include "service/app.hh"
#include "workload/generators.hh"
#include "workload/user_population.hh"

namespace uqsim::workload {

/** Summary of one measured load point. */
struct LoadResult
{
    double offeredQps = 0.0;
    double achievedQps = 0.0;  ///< completions per second
    double goodputQps = 0.0;   ///< completions within QoS per second
    Tick p50 = 0;
    Tick p95 = 0;
    Tick p99 = 0;
    double meanMs = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    double meanUtilization = 0.0;  ///< cluster-average CPU utilization
    double networkShare = 0.0;     ///< mean network / (network+app) time

    /** True when the tail meets the app's QoS and drops are rare. */
    bool
    meetsQos(Tick qos, double max_drop_frac = 0.01) const
    {
        const double total =
            static_cast<double>(completed) + static_cast<double>(dropped);
        const double drop_frac =
            total > 0.0 ? static_cast<double>(dropped) / total : 0.0;
        return completed > 0 && p99 <= qos && drop_frac <= max_drop_frac;
    }
};

/**
 * Run @p app at @p qps for warmup+measure, return the measured-window
 * summary. Stats are reset after warmup. In-flight requests at the end
 * of the window are given a short drain period.
 */
LoadResult runLoad(service::App &app, double qps, Tick warmup,
                   Tick measure, const QueryMix &mix,
                   const UserPopulation &users, std::uint64_t seed);

/**
 * Bisect for the largest @p qps in [lo, hi] with feasible(qps) true.
 * @p feasible must build a *fresh* world per probe (saturation state
 * must not leak between probes). Returns lo if nothing is feasible.
 */
double findMaxQps(const std::function<bool(double)> &feasible, double lo,
                  double hi, int iterations = 7);

} // namespace uqsim::workload

#endif // UQSIM_WORKLOAD_LOAD_SWEEP_HH
