/**
 * @file
 * Declarative fault schedules.
 *
 * A fault schedule is a list of timed fault windows the injector arms
 * against a running App: instance crashes, transient per-request error
 * rates, server slowdowns and network partitions. Schedules come from
 * the command line (`--fault crash@t=2s,dur=1s,service=backend`) or a
 * JSON file (`--faults faults.json`); both parse into the same
 * FaultSpec records, so a run is fully described by its flags + seed
 * and replays bit-identically.
 */

#ifndef UQSIM_FAULT_FAULT_HH
#define UQSIM_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"

namespace uqsim::json {
struct Value;
}

namespace uqsim::fault {

/** What kind of failure a window injects. */
enum class FaultKind
{
    Crash,     ///< instance crash (+ optional restart after duration)
    ErrorRate, ///< per-request transient errors at a service
    Slowdown,  ///< execution-time multiplier on a server
    Partition, ///< drop messages between two server groups
};

/** @return a short printable kind name ("crash", "errors", ...). */
std::string faultKindName(FaultKind kind);

/**
 * Role-addressed crash target within a replica group. With a role set,
 * FaultSpec::instance names the *group* (ring shard) index and the
 * concrete victim instance is resolved when the window fires — so
 * "crash the leader of group 2 at t=3s" keeps meaning the leader even
 * after earlier failovers moved leadership.
 */
enum class CrashRole
{
    None,     ///< instance is a literal tier instance index
    Leader,   ///< the group's current leader at fire time
    Follower, ///< the group's first live non-leader member at fire time
};

/** @return a printable role name ("leader", "follower", "none"). */
std::string crashRoleName(CrashRole role);

/** Parse a role name; @return false (out untouched) on bad input. */
bool crashRoleByName(const std::string &name, CrashRole &out);

/** An inclusive range of server ids (partition group). */
struct ServerRange
{
    unsigned first = 0;
    unsigned last = 0;

    bool
    contains(unsigned id) const
    {
        return id >= first && id <= last;
    }
};

/**
 * One scheduled fault window. Field relevance depends on kind:
 *  - Crash:     service, instance; duration 0 = never restarts
 *  - ErrorRate: service, rate; duration required
 *  - Slowdown:  server, factor; duration required
 *  - Partition: groupA, groupB, loss; duration required
 */
struct FaultSpec
{
    FaultKind kind = FaultKind::Crash;

    /** Absolute start time of the window. */
    Tick start = 0;

    /** Window length; 0 for a permanent crash. */
    Tick duration = 0;

    /** Target tier (Crash, ErrorRate). */
    std::string service;

    /**
     * Target instance index within the tier (Crash). With a role set
     * this is the replica-*group* index instead and the victim is
     * resolved at fire time.
     */
    unsigned instance = 0;

    /** Role-addressed crash target (Crash on a replicated tier). */
    CrashRole role = CrashRole::None;

    /** Probability an arrival fails during the window (ErrorRate). */
    double rate = 1.0;

    /** Target server id (Slowdown). */
    unsigned server = 0;

    /** Execution-time multiplier while active (Slowdown). */
    double factor = 10.0;

    /** The two partitioned server groups (Partition). */
    ServerRange groupA;
    ServerRange groupB;

    /** Probability a crossing message is dropped (Partition). */
    double loss = 1.0;

    /** End of the window (start for permanent crashes). */
    Tick end() const { return start + duration; }

    /** One-line summary for reports/logs. */
    std::string describe() const;
};

/**
 * Parse a duration like "250ms", "2s", "1500us", "800ns" or a bare
 * number (milliseconds). @return false on malformed input; @p out is
 * untouched then.
 */
bool parseDuration(const std::string &text, Tick &out);

/**
 * Parse one `--fault` flag value:
 *   kind@key=value,key=value,...
 * e.g. `crash@t=2s,dur=1s,service=backend,instance=0`
 *      `errors@t=1s,dur=2s,service=backend,rate=0.8`
 *      `slow@t=1s,dur=2s,server=0,factor=10`
 *      `partition@t=3s,dur=1s,a=0-1,b=2-4,loss=1`
 *
 * On failure @return false and set @p error to a human-readable
 * message naming the offending key.
 */
bool parseFaultFlag(const std::string &text, FaultSpec &out,
                    std::string &error);

/**
 * Parse a JSON fault schedule: an array of objects (or an object with
 * a "faults" array) whose keys mirror the flag syntax:
 *   [{"kind": "crash", "t": "2s", "dur": "1s",
 *     "service": "backend", "instance": 0}]
 * Strings and bare numbers are both accepted for times. On failure
 * @return false and set @p error.
 */
bool parseFaultFile(const std::string &json_text,
                    std::vector<FaultSpec> &out, std::string &error);

/**
 * Build one FaultSpec from an already-parsed JSON object (the element
 * shape of parseFaultFile). Shared with the scenario-config surface
 * (`uqsim_run --config`), which embeds a "faults" array.
 */
bool faultFromJson(const json::Value &obj, FaultSpec &out,
                   std::string &error);

} // namespace uqsim::fault

#endif // UQSIM_FAULT_FAULT_HH
