#include "fault/fault.hh"

#include <cctype>
#include <cstdlib>
#include <map>

#include "core/logging.hh"

namespace uqsim::fault {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::ErrorRate:
        return "errors";
      case FaultKind::Slowdown:
        return "slow";
      case FaultKind::Partition:
        return "partition";
    }
    return "unknown";
}

std::string
FaultSpec::describe() const
{
    std::string s = strCat(faultKindName(kind),
                           " t=", ticksToMs(start), "ms");
    if (duration)
        s += strCat(" dur=", ticksToMs(duration), "ms");
    switch (kind) {
      case FaultKind::Crash:
        s += strCat(" ", service, "[", instance, "]");
        break;
      case FaultKind::ErrorRate:
        s += strCat(" ", service, " rate=", rate);
        break;
      case FaultKind::Slowdown:
        s += strCat(" server=", server, " factor=", factor);
        break;
      case FaultKind::Partition:
        s += strCat(" ", groupA.first, "-", groupA.last, " | ",
                    groupB.first, "-", groupB.last, " loss=", loss);
        break;
    }
    return s;
}

bool
parseDuration(const std::string &text, Tick &out)
{
    if (text.empty())
        return false;
    std::size_t i = 0;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) ||
            text[i] == '.'))
        ++i;
    if (i == 0)
        return false;
    double value = 0.0;
    try {
        std::size_t consumed = 0;
        value = std::stod(text.substr(0, i), &consumed);
        if (consumed != i)
            return false;
    } catch (...) {
        return false;
    }
    const std::string unit = text.substr(i);
    double scale;
    if (unit.empty() || unit == "ms")
        scale = static_cast<double>(kTicksPerMs);
    else if (unit == "ns")
        scale = 1.0;
    else if (unit == "us")
        scale = static_cast<double>(kTicksPerUs);
    else if (unit == "s")
        scale = static_cast<double>(kTicksPerSec);
    else
        return false;
    if (value < 0.0)
        return false;
    out = static_cast<Tick>(value * scale);
    return true;
}

namespace {

bool
parseUnsigned(const std::string &text, unsigned &out)
{
    if (text.empty())
        return false;
    try {
        std::size_t consumed = 0;
        const unsigned long v = std::stoul(text, &consumed);
        if (consumed != text.size())
            return false;
        out = static_cast<unsigned>(v);
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    try {
        std::size_t consumed = 0;
        const double v = std::stod(text, &consumed);
        if (consumed != text.size())
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseRange(const std::string &text, ServerRange &out)
{
    const std::size_t dash = text.find('-');
    if (dash == std::string::npos) {
        unsigned v;
        if (!parseUnsigned(text, v))
            return false;
        out.first = out.last = v;
        return true;
    }
    if (!parseUnsigned(text.substr(0, dash), out.first) ||
        !parseUnsigned(text.substr(dash + 1), out.last))
        return false;
    return out.first <= out.last;
}

bool
kindFromName(const std::string &name, FaultKind &out)
{
    if (name == "crash")
        out = FaultKind::Crash;
    else if (name == "errors" || name == "error" || name == "error-rate")
        out = FaultKind::ErrorRate;
    else if (name == "slow" || name == "slowdown")
        out = FaultKind::Slowdown;
    else if (name == "partition")
        out = FaultKind::Partition;
    else
        return false;
    return true;
}

/**
 * Apply one key=value pair to @p spec; shared between the flag parser
 * and the JSON parser so both syntaxes accept the same keys.
 */
bool
applyKey(FaultSpec &spec, const std::string &key, const std::string &value,
         std::string &error)
{
    if (key == "t" || key == "start") {
        if (!parseDuration(value, spec.start)) {
            error = strCat("bad time '", value, "' for key '", key, "'");
            return false;
        }
    } else if (key == "dur" || key == "duration") {
        if (!parseDuration(value, spec.duration)) {
            error = strCat("bad duration '", value, "'");
            return false;
        }
    } else if (key == "service") {
        if (value.empty()) {
            error = "empty service name";
            return false;
        }
        spec.service = value;
    } else if (key == "instance") {
        if (!parseUnsigned(value, spec.instance)) {
            error = strCat("bad instance '", value, "'");
            return false;
        }
    } else if (key == "rate") {
        if (!parseDouble(value, spec.rate) || spec.rate < 0.0 ||
            spec.rate > 1.0) {
            error = strCat("bad rate '", value, "' (want [0,1])");
            return false;
        }
    } else if (key == "server") {
        if (!parseUnsigned(value, spec.server)) {
            error = strCat("bad server '", value, "'");
            return false;
        }
    } else if (key == "factor") {
        if (!parseDouble(value, spec.factor) || spec.factor < 1.0) {
            error = strCat("bad factor '", value, "' (want >= 1)");
            return false;
        }
    } else if (key == "a") {
        if (!parseRange(value, spec.groupA)) {
            error = strCat("bad server range '", value, "' for group a");
            return false;
        }
    } else if (key == "b") {
        if (!parseRange(value, spec.groupB)) {
            error = strCat("bad server range '", value, "' for group b");
            return false;
        }
    } else if (key == "loss") {
        if (!parseDouble(value, spec.loss) || spec.loss < 0.0 ||
            spec.loss > 1.0) {
            error = strCat("bad loss '", value, "' (want [0,1])");
            return false;
        }
    } else {
        error = strCat("unknown fault key '", key, "'");
        return false;
    }
    return true;
}

/** Kind-specific sanity checks once all keys are applied. */
bool
validateSpec(const FaultSpec &spec, std::string &error)
{
    switch (spec.kind) {
      case FaultKind::Crash:
        if (spec.service.empty()) {
            error = "crash fault needs service=";
            return false;
        }
        break;
      case FaultKind::ErrorRate:
        if (spec.service.empty()) {
            error = "errors fault needs service=";
            return false;
        }
        if (spec.duration == 0) {
            error = "errors fault needs dur=";
            return false;
        }
        break;
      case FaultKind::Slowdown:
        if (spec.duration == 0) {
            error = "slow fault needs dur=";
            return false;
        }
        break;
      case FaultKind::Partition:
        if (spec.duration == 0) {
            error = "partition fault needs dur=";
            return false;
        }
        if (spec.groupA.last == 0 && spec.groupA.first == 0 &&
            spec.groupB.last == 0 && spec.groupB.first == 0) {
            error = "partition fault needs a= and b= server ranges";
            return false;
        }
        break;
    }
    return true;
}

// ---- Minimal JSON reader ----------------------------------------------
//
// Just enough JSON for fault schedules: objects, arrays, strings,
// numbers, booleans and null. No escapes beyond \" \\ \/ \n \t. Keeps
// the suite dependency-free.

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : object)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size()) {
            error_ = strCat("trailing JSON at offset ", pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        error_ = strCat(msg, " at offset ", pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of JSON");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"')
            return parseString(out);
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n')
            return parseNull(out);
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(key.string, std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(JsonValue &out)
    {
        out.type = JsonValue::Type::String;
        ++pos_; // '"'
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                switch (text_[pos_]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default:
                    return fail("unsupported escape");
                }
            }
            out.string.push_back(c);
            ++pos_;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing '"'
        return true;
    }

    bool
    parseBool(JsonValue &out)
    {
        out.type = JsonValue::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNull(JsonValue &out)
    {
        out.type = JsonValue::Type::Null;
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(JsonValue &out)
    {
        out.type = JsonValue::Type::Number;
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            return fail("expected value");
        try {
            std::size_t consumed = 0;
            out.number = std::stod(text_.substr(pos_, end - pos_),
                                   &consumed);
            if (consumed != end - pos_)
                return fail("bad number");
        } catch (...) {
            return fail("bad number");
        }
        pos_ = end;
        return true;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

/** Render a scalar JSON value back to the flag-syntax value string. */
bool
scalarToString(const JsonValue &v, std::string &out)
{
    switch (v.type) {
      case JsonValue::Type::String:
        out = v.string;
        return true;
      case JsonValue::Type::Number:
        // Integers print without a trailing ".000000".
        if (v.number == static_cast<double>(
                            static_cast<long long>(v.number)))
            out = strCat(static_cast<long long>(v.number));
        else
            out = strCat(v.number);
        return true;
      default:
        return false;
    }
}

bool
specFromJsonObject(const JsonValue &obj, FaultSpec &out, std::string &error)
{
    if (obj.type != JsonValue::Type::Object) {
        error = "fault entry is not a JSON object";
        return false;
    }
    const JsonValue *kind = obj.find("kind");
    if (!kind || kind->type != JsonValue::Type::String) {
        error = "fault entry missing string \"kind\"";
        return false;
    }
    FaultSpec spec;
    if (!kindFromName(kind->string, spec.kind)) {
        error = strCat("unknown fault kind '", kind->string, "'");
        return false;
    }
    for (const auto &kv : obj.object) {
        if (kv.first == "kind")
            continue;
        std::string value;
        if (!scalarToString(kv.second, value)) {
            error = strCat("fault key '", kv.first,
                           "' must be a string or number");
            return false;
        }
        if (!applyKey(spec, kv.first, value, error))
            return false;
    }
    if (!validateSpec(spec, error))
        return false;
    out = spec;
    return true;
}

} // namespace

bool
parseFaultFlag(const std::string &text, FaultSpec &out, std::string &error)
{
    const std::size_t at = text.find('@');
    if (at == std::string::npos) {
        error = strCat("fault spec '", text, "' missing 'kind@...'");
        return false;
    }
    FaultSpec spec;
    if (!kindFromName(text.substr(0, at), spec.kind)) {
        error = strCat("unknown fault kind '", text.substr(0, at), "'");
        return false;
    }
    std::size_t pos = at + 1;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string pair = text.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = strCat("bad fault parameter '", pair,
                           "' (want key=value)");
            return false;
        }
        if (!applyKey(spec, pair.substr(0, eq), pair.substr(eq + 1),
                      error))
            return false;
        pos = comma + 1;
    }
    if (!validateSpec(spec, error))
        return false;
    out = spec;
    return true;
}

bool
parseFaultFile(const std::string &json_text, std::vector<FaultSpec> &out,
               std::string &error)
{
    JsonValue root;
    JsonParser parser(json_text, error);
    if (!parser.parse(root))
        return false;
    const JsonValue *list = &root;
    if (root.type == JsonValue::Type::Object) {
        list = root.find("faults");
        if (!list) {
            error = "fault file object has no \"faults\" array";
            return false;
        }
    }
    if (list->type != JsonValue::Type::Array) {
        error = "fault schedule must be a JSON array";
        return false;
    }
    std::vector<FaultSpec> specs;
    for (std::size_t i = 0; i < list->array.size(); ++i) {
        FaultSpec spec;
        if (!specFromJsonObject(list->array[i], spec, error)) {
            error = strCat("fault #", i, ": ", error);
            return false;
        }
        specs.push_back(std::move(spec));
    }
    out = std::move(specs);
    return true;
}

} // namespace uqsim::fault
