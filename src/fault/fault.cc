#include "fault/fault.hh"

#include <cctype>
#include <cstdlib>
#include <map>

#include "core/json.hh"
#include "core/logging.hh"

namespace uqsim::fault {

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::ErrorRate:
        return "errors";
      case FaultKind::Slowdown:
        return "slow";
      case FaultKind::Partition:
        return "partition";
    }
    return "unknown";
}

std::string
crashRoleName(CrashRole role)
{
    switch (role) {
      case CrashRole::None:
        return "none";
      case CrashRole::Leader:
        return "leader";
      case CrashRole::Follower:
        return "follower";
    }
    return "unknown";
}

bool
crashRoleByName(const std::string &name, CrashRole &out)
{
    if (name == "leader")
        out = CrashRole::Leader;
    else if (name == "follower")
        out = CrashRole::Follower;
    else if (name == "none")
        out = CrashRole::None;
    else
        return false;
    return true;
}

std::string
FaultSpec::describe() const
{
    std::string s = strCat(faultKindName(kind),
                           " t=", ticksToMs(start), "ms");
    if (duration)
        s += strCat(" dur=", ticksToMs(duration), "ms");
    switch (kind) {
      case FaultKind::Crash:
        if (role != CrashRole::None)
            s += strCat(" ", service, " group=", instance,
                        " role=", crashRoleName(role));
        else
            s += strCat(" ", service, "[", instance, "]");
        break;
      case FaultKind::ErrorRate:
        s += strCat(" ", service, " rate=", rate);
        break;
      case FaultKind::Slowdown:
        s += strCat(" server=", server, " factor=", factor);
        break;
      case FaultKind::Partition:
        s += strCat(" ", groupA.first, "-", groupA.last, " | ",
                    groupB.first, "-", groupB.last, " loss=", loss);
        break;
    }
    return s;
}

bool
parseDuration(const std::string &text, Tick &out)
{
    if (text.empty())
        return false;
    std::size_t i = 0;
    while (i < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[i])) ||
            text[i] == '.'))
        ++i;
    if (i == 0)
        return false;
    double value = 0.0;
    try {
        std::size_t consumed = 0;
        value = std::stod(text.substr(0, i), &consumed);
        if (consumed != i)
            return false;
    } catch (...) {
        return false;
    }
    const std::string unit = text.substr(i);
    double scale;
    if (unit.empty() || unit == "ms")
        scale = static_cast<double>(kTicksPerMs);
    else if (unit == "ns")
        scale = 1.0;
    else if (unit == "us")
        scale = static_cast<double>(kTicksPerUs);
    else if (unit == "s")
        scale = static_cast<double>(kTicksPerSec);
    else
        return false;
    if (value < 0.0)
        return false;
    out = static_cast<Tick>(value * scale);
    return true;
}

namespace {

bool
parseUnsigned(const std::string &text, unsigned &out)
{
    if (text.empty())
        return false;
    try {
        std::size_t consumed = 0;
        const unsigned long v = std::stoul(text, &consumed);
        if (consumed != text.size())
            return false;
        out = static_cast<unsigned>(v);
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    try {
        std::size_t consumed = 0;
        const double v = std::stod(text, &consumed);
        if (consumed != text.size())
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseRange(const std::string &text, ServerRange &out)
{
    const std::size_t dash = text.find('-');
    if (dash == std::string::npos) {
        unsigned v;
        if (!parseUnsigned(text, v))
            return false;
        out.first = out.last = v;
        return true;
    }
    if (!parseUnsigned(text.substr(0, dash), out.first) ||
        !parseUnsigned(text.substr(dash + 1), out.last))
        return false;
    return out.first <= out.last;
}

bool
kindFromName(const std::string &name, FaultKind &out)
{
    if (name == "crash")
        out = FaultKind::Crash;
    else if (name == "errors" || name == "error" || name == "error-rate")
        out = FaultKind::ErrorRate;
    else if (name == "slow" || name == "slowdown")
        out = FaultKind::Slowdown;
    else if (name == "partition")
        out = FaultKind::Partition;
    else
        return false;
    return true;
}

/**
 * Apply one key=value pair to @p spec; shared between the flag parser
 * and the JSON parser so both syntaxes accept the same keys.
 */
bool
applyKey(FaultSpec &spec, const std::string &key, const std::string &value,
         std::string &error)
{
    if (key == "t" || key == "start") {
        if (!parseDuration(value, spec.start)) {
            error = strCat("bad time '", value, "' for key '", key, "'");
            return false;
        }
    } else if (key == "dur" || key == "duration") {
        if (!parseDuration(value, spec.duration)) {
            error = strCat("bad duration '", value, "'");
            return false;
        }
    } else if (key == "service") {
        if (value.empty()) {
            error = "empty service name";
            return false;
        }
        spec.service = value;
    } else if (key == "instance") {
        if (!parseUnsigned(value, spec.instance)) {
            error = strCat("bad instance '", value, "'");
            return false;
        }
    } else if (key == "role") {
        if (!crashRoleByName(value, spec.role)) {
            error = strCat("bad role '", value,
                           "' (want leader|follower|none)");
            return false;
        }
    } else if (key == "group") {
        // Alias for instance= that reads naturally with role=.
        if (!parseUnsigned(value, spec.instance)) {
            error = strCat("bad group '", value, "'");
            return false;
        }
    } else if (key == "rate") {
        if (!parseDouble(value, spec.rate) || spec.rate < 0.0 ||
            spec.rate > 1.0) {
            error = strCat("bad rate '", value, "' (want [0,1])");
            return false;
        }
    } else if (key == "server") {
        if (!parseUnsigned(value, spec.server)) {
            error = strCat("bad server '", value, "'");
            return false;
        }
    } else if (key == "factor") {
        if (!parseDouble(value, spec.factor) || spec.factor < 1.0) {
            error = strCat("bad factor '", value, "' (want >= 1)");
            return false;
        }
    } else if (key == "a") {
        if (!parseRange(value, spec.groupA)) {
            error = strCat("bad server range '", value, "' for group a");
            return false;
        }
    } else if (key == "b") {
        if (!parseRange(value, spec.groupB)) {
            error = strCat("bad server range '", value, "' for group b");
            return false;
        }
    } else if (key == "loss") {
        if (!parseDouble(value, spec.loss) || spec.loss < 0.0 ||
            spec.loss > 1.0) {
            error = strCat("bad loss '", value, "' (want [0,1])");
            return false;
        }
    } else {
        error = strCat("unknown fault key '", key, "'");
        return false;
    }
    return true;
}

/** Kind-specific sanity checks once all keys are applied. */
bool
validateSpec(const FaultSpec &spec, std::string &error)
{
    if (spec.role != CrashRole::None && spec.kind != FaultKind::Crash) {
        error = "role= only applies to crash faults";
        return false;
    }
    switch (spec.kind) {
      case FaultKind::Crash:
        if (spec.service.empty()) {
            error = "crash fault needs service=";
            return false;
        }
        break;
      case FaultKind::ErrorRate:
        if (spec.service.empty()) {
            error = "errors fault needs service=";
            return false;
        }
        if (spec.duration == 0) {
            error = "errors fault needs dur=";
            return false;
        }
        break;
      case FaultKind::Slowdown:
        if (spec.duration == 0) {
            error = "slow fault needs dur=";
            return false;
        }
        break;
      case FaultKind::Partition:
        if (spec.duration == 0) {
            error = "partition fault needs dur=";
            return false;
        }
        if (spec.groupA.last == 0 && spec.groupA.first == 0 &&
            spec.groupB.last == 0 && spec.groupB.first == 0) {
            error = "partition fault needs a= and b= server ranges";
            return false;
        }
        break;
    }
    return true;
}

bool
specFromJsonObject(const json::Value &obj, FaultSpec &out,
                   std::string &error)
{
    if (!obj.isObject()) {
        error = "fault entry is not a JSON object";
        return false;
    }
    const json::Value *kind = obj.find("kind");
    if (!kind || !kind->isString()) {
        error = "fault entry missing string \"kind\"";
        return false;
    }
    FaultSpec spec;
    if (!kindFromName(kind->string, spec.kind)) {
        error = strCat("unknown fault kind '", kind->string, "'");
        return false;
    }
    for (const auto &kv : obj.object) {
        if (kv.first == "kind")
            continue;
        std::string value;
        if (!json::scalarToString(kv.second, value)) {
            error = strCat("fault key '", kv.first,
                           "' must be a string or number");
            return false;
        }
        if (!applyKey(spec, kv.first, value, error))
            return false;
    }
    if (!validateSpec(spec, error))
        return false;
    out = spec;
    return true;
}

} // namespace

bool
faultFromJson(const json::Value &obj, FaultSpec &out, std::string &error)
{
    return specFromJsonObject(obj, out, error);
}

bool
parseFaultFlag(const std::string &text, FaultSpec &out, std::string &error)
{
    const std::size_t at = text.find('@');
    if (at == std::string::npos) {
        error = strCat("fault spec '", text, "' missing 'kind@...'");
        return false;
    }
    FaultSpec spec;
    if (!kindFromName(text.substr(0, at), spec.kind)) {
        error = strCat("unknown fault kind '", text.substr(0, at), "'");
        return false;
    }
    std::size_t pos = at + 1;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string pair = text.substr(pos, comma - pos);
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = strCat("bad fault parameter '", pair,
                           "' (want key=value)");
            return false;
        }
        if (!applyKey(spec, pair.substr(0, eq), pair.substr(eq + 1),
                      error))
            return false;
        pos = comma + 1;
    }
    if (!validateSpec(spec, error))
        return false;
    out = spec;
    return true;
}

bool
parseFaultFile(const std::string &json_text, std::vector<FaultSpec> &out,
               std::string &error)
{
    json::Value root;
    if (!json::parse(json_text, root, error))
        return false;
    const json::Value *list = &root;
    if (root.isObject()) {
        list = root.find("faults");
        if (!list) {
            error = "fault file object has no \"faults\" array";
            return false;
        }
    }
    if (!list->isArray()) {
        error = "fault schedule must be a JSON array";
        return false;
    }
    std::vector<FaultSpec> specs;
    for (std::size_t i = 0; i < list->array.size(); ++i) {
        FaultSpec spec;
        if (!specFromJsonObject(list->array[i], spec, error)) {
            error = strCat("fault #", i, ": ", error);
            return false;
        }
        specs.push_back(std::move(spec));
    }
    out = std::move(specs);
    return true;
}

} // namespace uqsim::fault
