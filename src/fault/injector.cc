#include "fault/injector.hh"

#include "core/logging.hh"

namespace uqsim::fault {

FaultInjector::FaultInjector(service::App &app, std::uint64_t seed)
    // Derived stream (never forked): arming an injector must not
    // perturb the app's own RNG sequences.
    : app_(app), rng_(seed ^ 0x4641554c54535452ull)
{
    requestsFailed_ = &app_.metrics().counter("fault.requests_failed");
    messagesDropped_ = &app_.metrics().counter("fault.messages_dropped");
    crashes_ = &app_.metrics().counter("fault.crashes");
}

FaultInjector::~FaultInjector()
{
    // The app may outlive the injector; never leave hooks dangling.
    if (armed_) {
        app_.setFaultHook(nullptr);
        app_.network().setDropHook(nullptr);
    }
}

void
FaultInjector::add(FaultSpec spec)
{
    if (armed_)
        fatal("FaultInjector::add after arm()");
    schedule_.push_back(std::move(spec));
}

void
FaultInjector::addAll(const std::vector<FaultSpec> &specs)
{
    for (const auto &s : specs)
        add(s);
}

void
FaultInjector::arm()
{
    if (armed_)
        fatal("FaultInjector::arm called twice");
    armed_ = true;
    live_.assign(schedule_.size(), false);

    bool any_errors = false, any_partitions = false, any_crashes = false;
    for (const FaultSpec &spec : schedule_) {
        switch (spec.kind) {
          case FaultKind::Crash:
          case FaultKind::ErrorRate: {
            if (!app_.hasService(spec.service))
                fatal(strCat("fault targets unknown service '",
                             spec.service, "'"));
            const auto &insts = app_.service(spec.service).instances();
            if (spec.kind == FaultKind::Crash &&
                spec.instance >= insts.size())
                fatal(strCat("fault targets instance ", spec.instance,
                             " of '", spec.service, "' which has only ",
                             insts.size()));
            (spec.kind == FaultKind::Crash ? any_crashes : any_errors) =
                true;
            break;
          }
          case FaultKind::Slowdown:
            if (spec.server >= app_.cluster().size())
                fatal(strCat("fault targets unknown server ",
                             spec.server));
            break;
          case FaultKind::Partition:
            any_partitions = true;
            break;
        }
    }

    // Install only what the schedule needs: every hook left null keeps
    // that code path — and the execution digest — untouched.
    if (any_errors)
        app_.setFaultHook(this);
    if (any_partitions)
        app_.network().setDropHook([this](unsigned src, unsigned dst) {
            return shouldDropMessage(src, dst);
        });
    if (any_crashes)
        app_.enableCrashTracking();

    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        const FaultSpec &spec = schedule_[i];
        app_.ctx().scheduleAt(spec.start, [this, i]() { startFault(i); });
        // duration 0 means a permanent fault (crash with no restart).
        if (spec.duration > 0)
            app_.ctx().scheduleAt(spec.end(),
                                  [this, i]() { endFault(i); });
    }
}

void
FaultInjector::startFault(std::size_t idx)
{
    const FaultSpec &spec = schedule_[idx];
    live_[idx] = true;
    ++active_;
    switch (spec.kind) {
      case FaultKind::Crash:
        crashes_->inc();
        app_.crashInstance(spec.service, spec.instance);
        break;
      case FaultKind::Slowdown:
        app_.cluster().server(spec.server).setSlowFactor(spec.factor);
        break;
      case FaultKind::ErrorRate:
      case FaultKind::Partition:
        // Window-gated hooks; nothing to flip besides live_.
        break;
    }
}

void
FaultInjector::endFault(std::size_t idx)
{
    const FaultSpec &spec = schedule_[idx];
    live_[idx] = false;
    --active_;
    switch (spec.kind) {
      case FaultKind::Crash:
        app_.restartInstance(spec.service, spec.instance);
        break;
      case FaultKind::Slowdown:
        app_.cluster().server(spec.server).setSlowFactor(1.0);
        break;
      case FaultKind::ErrorRate:
      case FaultKind::Partition:
        break;
    }
}

bool
FaultInjector::shouldFailRequest(const service::Microservice &svc)
{
    if (active_ == 0)
        return false;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (!live_[i] || schedule_[i].kind != FaultKind::ErrorRate)
            continue;
        if (schedule_[i].service != svc.name())
            continue;
        if (rng_.bernoulli(schedule_[i].rate)) {
            requestsFailed_->inc();
            return true;
        }
    }
    return false;
}

bool
FaultInjector::shouldDropMessage(unsigned src, unsigned dst)
{
    if (active_ == 0)
        return false;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (!live_[i] || schedule_[i].kind != FaultKind::Partition)
            continue;
        const FaultSpec &spec = schedule_[i];
        const bool crosses =
            (spec.groupA.contains(src) && spec.groupB.contains(dst)) ||
            (spec.groupA.contains(dst) && spec.groupB.contains(src));
        if (!crosses)
            continue;
        if (spec.loss >= 1.0 || rng_.bernoulli(spec.loss)) {
            messagesDropped_->inc();
            return true;
        }
    }
    return false;
}

} // namespace uqsim::fault
