#include "fault/injector.hh"

#include "core/logging.hh"

namespace uqsim::fault {

FaultInjector::FaultInjector(service::App &app, std::uint64_t seed)
    // Derived stream (never forked): arming an injector must not
    // perturb the app's own RNG sequences.
    : app_(app), rng_(seed ^ 0x4641554c54535452ull)
{
    requestsFailed_ = &app_.metrics().counter("fault.requests_failed");
    messagesDropped_ = &app_.metrics().counter("fault.messages_dropped");
    crashes_ = &app_.metrics().counter("fault.crashes");
}

FaultInjector::~FaultInjector()
{
    // The app may outlive the injector; never leave hooks dangling.
    if (armed_) {
        app_.setFaultHook(nullptr);
        app_.network().setDropHook(nullptr);
    }
}

void
FaultInjector::add(FaultSpec spec)
{
    if (armed_)
        fatal("FaultInjector::add after arm()");
    schedule_.push_back(std::move(spec));
}

void
FaultInjector::addAll(const std::vector<FaultSpec> &specs)
{
    for (const auto &s : specs)
        add(s);
}

void
FaultInjector::arm()
{
    if (armed_)
        fatal("FaultInjector::arm called twice");
    armed_ = true;
    live_.assign(schedule_.size(), false);
    resolved_.assign(schedule_.size(), -1);

    bool any_errors = false, any_partitions = false, any_crashes = false;
    for (const FaultSpec &spec : schedule_) {
        switch (spec.kind) {
          case FaultKind::Crash:
          case FaultKind::ErrorRate: {
            if (!app_.hasService(spec.service))
                fatal(strCat("fault targets unknown service '",
                             spec.service, "'"));
            const service::Microservice &svc =
                app_.service(spec.service);
            if (spec.kind == FaultKind::Crash &&
                spec.role != CrashRole::None) {
                // Role-addressed: instance names the replica group.
                if (!svc.replicated())
                    fatal(strCat("fault targets ",
                                 crashRoleName(spec.role), " of '",
                                 spec.service,
                                 "' which is not replicated"));
                if (spec.instance >= svc.replicaSet()->groups())
                    fatal(strCat("fault targets group ", spec.instance,
                                 " of '", spec.service,
                                 "' which has only ",
                                 svc.replicaSet()->groups()));
            } else if (spec.kind == FaultKind::Crash &&
                       spec.instance >= svc.instances().size()) {
                fatal(strCat("fault targets instance ", spec.instance,
                             " of '", spec.service, "' which has only ",
                             svc.instances().size()));
            }
            (spec.kind == FaultKind::Crash ? any_crashes : any_errors) =
                true;
            break;
          }
          case FaultKind::Slowdown:
            if (spec.server >= app_.cluster().size())
                fatal(strCat("fault targets unknown server ",
                             spec.server));
            break;
          case FaultKind::Partition:
            any_partitions = true;
            break;
        }
    }

    // Install only what the schedule needs: every hook left null keeps
    // that code path — and the execution digest — untouched.
    if (any_errors)
        app_.setFaultHook(this);
    if (any_partitions) {
        app_.network().setDropHook([this](unsigned src, unsigned dst) {
            return shouldDropMessage(src, dst);
        });
        // Replica groups see the same partitions the wire does: a
        // deterministically severed leader cannot hold its quorum, so
        // the isolated side deposes it and elects in the majority
        // component.
        for (service::Microservice *svc : app_.services()) {
            if (!svc->replicated())
                continue;
            service::Microservice *s = svc;
            svc->replicaSet()->setSevered(
                [this, s](unsigned a, unsigned b) {
                    const auto &insts = s->instances();
                    if (a >= insts.size() || b >= insts.size())
                        return false;
                    return linkSevered(insts[a]->server().id(),
                                       insts[b]->server().id());
                });
        }
    }
    if (any_crashes)
        app_.enableCrashTracking();

    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        const FaultSpec &spec = schedule_[i];
        app_.ctx().scheduleAt(spec.start, [this, i]() { startFault(i); });
        // duration 0 means a permanent fault (crash with no restart).
        if (spec.duration > 0)
            app_.ctx().scheduleAt(spec.end(),
                                  [this, i]() { endFault(i); });
    }
}

int
FaultInjector::resolveCrashVictim(const FaultSpec &spec)
{
    service::Microservice &svc = app_.service(spec.service);
    if (spec.role == CrashRole::None)
        return static_cast<int>(spec.instance);

    replica::ReplicaSet *rs = svc.replicaSet();
    const unsigned group = spec.instance;
    const auto &insts = svc.instances();
    const int lead = rs->leaderOf(group, app_.ctx().now());

    if (spec.role == CrashRole::Leader) {
        if (lead >= 0 && insts[static_cast<unsigned>(lead)]->active())
            return lead;
        // Mid-election (or the leader is already down): hit the member
        // the pending election would promote — the first live one.
        for (unsigned p = 0; p < rs->replicas(); ++p) {
            const unsigned i = rs->memberAt(group, p);
            if (insts[i]->active())
                return static_cast<int>(i);
        }
        return -1;
    }

    // Follower: the first live member that is not the current leader.
    for (unsigned p = 0; p < rs->replicas(); ++p) {
        const unsigned i = rs->memberAt(group, p);
        if (static_cast<int>(i) == lead || !insts[i]->active())
            continue;
        return static_cast<int>(i);
    }
    return -1;
}

void
FaultInjector::notifyTopologyChange()
{
    for (service::Microservice *svc : app_.services())
        if (svc->replicated())
            svc->replicaSet()->onTopologyChange(app_.ctx().now());
}

void
FaultInjector::startFault(std::size_t idx)
{
    const FaultSpec &spec = schedule_[idx];
    live_[idx] = true;
    ++active_;
    switch (spec.kind) {
      case FaultKind::Crash: {
        const int victim = resolveCrashVictim(spec);
        resolved_[idx] = victim;
        if (victim < 0)
            break; // whole group already down: nothing left to kill
        crashes_->inc();
        app_.crashInstance(spec.service,
                           static_cast<unsigned>(victim));
        break;
      }
      case FaultKind::Slowdown:
        app_.cluster().server(spec.server).setSlowFactor(spec.factor);
        break;
      case FaultKind::ErrorRate:
        break;
      case FaultKind::Partition:
        // The drop hook is window-gated by live_; replica groups need
        // an explicit poke to depose leaders that just lost quorum.
        notifyTopologyChange();
        break;
    }
}

void
FaultInjector::endFault(std::size_t idx)
{
    const FaultSpec &spec = schedule_[idx];
    live_[idx] = false;
    --active_;
    switch (spec.kind) {
      case FaultKind::Crash: {
        const int victim = resolved_[idx];
        if (victim < 0)
            break;
        app_.restartInstance(spec.service,
                             static_cast<unsigned>(victim));
        break;
      }
      case FaultKind::Slowdown:
        app_.cluster().server(spec.server).setSlowFactor(1.0);
        break;
      case FaultKind::ErrorRate:
        break;
      case FaultKind::Partition:
        notifyTopologyChange();
        break;
    }
}

bool
FaultInjector::shouldFailRequest(const service::Microservice &svc)
{
    if (active_ == 0)
        return false;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (!live_[i] || schedule_[i].kind != FaultKind::ErrorRate)
            continue;
        if (schedule_[i].service != svc.name())
            continue;
        if (rng_.bernoulli(schedule_[i].rate)) {
            requestsFailed_->inc();
            return true;
        }
    }
    return false;
}

bool
FaultInjector::linkSevered(unsigned server_a, unsigned server_b) const
{
    if (active_ == 0 || server_a == server_b)
        return false;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (!live_[i] || schedule_[i].kind != FaultKind::Partition)
            continue;
        const FaultSpec &spec = schedule_[i];
        if (spec.loss < 1.0)
            continue; // lossy links still eventually carry acks
        const bool crosses =
            (spec.groupA.contains(server_a) &&
             spec.groupB.contains(server_b)) ||
            (spec.groupA.contains(server_b) &&
             spec.groupB.contains(server_a));
        if (crosses)
            return true;
    }
    return false;
}

bool
FaultInjector::shouldDropMessage(unsigned src, unsigned dst)
{
    if (active_ == 0)
        return false;
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (!live_[i] || schedule_[i].kind != FaultKind::Partition)
            continue;
        const FaultSpec &spec = schedule_[i];
        const bool crosses =
            (spec.groupA.contains(src) && spec.groupB.contains(dst)) ||
            (spec.groupA.contains(dst) && spec.groupB.contains(src));
        if (!crosses)
            continue;
        if (spec.loss >= 1.0 || rng_.bernoulli(spec.loss)) {
            messagesDropped_->inc();
            return true;
        }
    }
    return false;
}

} // namespace uqsim::fault
