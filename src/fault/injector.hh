/**
 * @file
 * Arms a fault schedule against a running App.
 *
 * The injector is strictly opt-in: constructing one does nothing, and
 * arm() installs only the hooks its schedule actually needs (the
 * request-fault hook only if error windows exist, the network drop
 * hook only if partitions exist, crash tracking only if crashes
 * exist). A run with an empty schedule therefore executes the exact
 * same event sequence — same digest — as a run without an injector.
 *
 * All probabilistic decisions (error-rate draws, packet-loss draws)
 * come from the injector's own deterministic RNG stream, derived from
 * the run seed, so the same seed + schedule replays bit-identically.
 */

#ifndef UQSIM_FAULT_INJECTOR_HH
#define UQSIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "core/metrics.hh"
#include "core/rng.hh"
#include "fault/fault.hh"
#include "service/app.hh"

namespace uqsim::fault {

/**
 * Schedules fault windows onto an App's simulator and implements the
 * runtime hooks that realize them.
 */
class FaultInjector : public service::RequestFaultHook
{
  public:
    /**
     * @param app  the application under test
     * @param seed run seed; the injector derives its own stream
     */
    FaultInjector(service::App &app, std::uint64_t seed);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;
    ~FaultInjector() override;

    /** Append one fault window (before arm()). */
    void add(FaultSpec spec);

    /** Append a whole schedule (before arm()). */
    void addAll(const std::vector<FaultSpec> &specs);

    /** The armed (or pending) schedule. */
    const std::vector<FaultSpec> &schedule() const { return schedule_; }

    /**
     * Validate the schedule against the app's topology (unknown
     * services / out-of-range instances are fatal) and schedule every
     * window's start/end events. Call exactly once, before running.
     */
    void arm();

    // -- service::RequestFaultHook ---------------------------------------

    /** Bernoulli draw against the active error windows for @p svc. */
    bool shouldFailRequest(const service::Microservice &svc) override;

    // -- Introspection ----------------------------------------------------

    /** Arrivals failed through the error-rate hook. */
    std::uint64_t requestsFailed() const { return requestsFailed_->value(); }

    /** Messages dropped by active partitions. */
    std::uint64_t messagesDropped() const
    {
        return messagesDropped_->value();
    }

    /** Crashes executed so far. */
    std::uint64_t crashes() const { return crashes_->value(); }

    /** Fault windows currently active. */
    unsigned activeWindows() const { return active_; }

  private:
    /** @return true if any partition window wants this message dead. */
    bool shouldDropMessage(unsigned src, unsigned dst);

    /**
     * Replica-quorum link oracle: a pair of servers is severed only by
     * an active *deterministic* partition window (loss >= 1), since a
     * lossy link still eventually carries acks and heartbeats.
     */
    bool linkSevered(unsigned server_a, unsigned server_b) const;

    /**
     * Resolve a role-addressed crash to a concrete instance at fire
     * time. @return -1 when no live member matches (no-op crash).
     */
    int resolveCrashVictim(const FaultSpec &spec);

    /** Tell every replicated tier that connectivity changed. */
    void notifyTopologyChange();

    void startFault(std::size_t idx);
    void endFault(std::size_t idx);

    service::App &app_;
    /** Derived stream; never forked from the app's RNGs. */
    Rng rng_;
    std::vector<FaultSpec> schedule_;
    /** Parallel to schedule_: whether each window is currently live. */
    std::vector<bool> live_;
    /**
     * Parallel to schedule_: the instance a role-addressed crash
     * resolved to at fire time (-1 = none), so the window's end
     * restarts the actual victim even after leadership moved on.
     */
    std::vector<int> resolved_;
    bool armed_ = false;
    unsigned active_ = 0;

    Counter *requestsFailed_ = nullptr;
    Counter *messagesDropped_ = nullptr;
    Counter *crashes_ = nullptr;
};

} // namespace uqsim::fault

#endif // UQSIM_FAULT_INJECTOR_HH
