/**
 * @file
 * Unified metrics registry: the single sink every subsystem reports
 * through (request accounting, tracing collector, connection pools,
 * monitor, autoscaler).
 *
 * Names are dotted lower-case paths, most-general first:
 * "subsystem.metric" or "subsystem.metric.tier" (e.g.
 * "rpc.pool.blocked_acquires", "monitor.cpu_util.frontend"). Callers
 * resolve a metric once — counter()/gauge()/histogram() get-or-create
 * by name and return a reference with a stable address — and then
 * update through the reference, so hot-path updates are O(1) and
 * allocation-free. Snapshots (dump/writeJson) iterate in name order,
 * keeping all reporting deterministic.
 */

#ifndef UQSIM_CORE_METRICS_HH
#define UQSIM_CORE_METRICS_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "core/histogram.hh"
#include "core/stats.hh"

namespace uqsim {

/**
 * Owns named counters, gauges and histograms.
 */
class MetricsRegistry
{
  public:
    /** Get or create a counter (stable reference). */
    Counter &counter(const std::string &name);

    /** Get or create a gauge (stable reference). */
    Gauge &gauge(const std::string &name);

    /** Get or create a histogram (stable reference). */
    Histogram &histogram(const std::string &name);

    /** Whether a metric of any kind with this name exists. */
    bool has(const std::string &name) const;

    /** Registered metrics of all kinds. */
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /** Human-readable dump, one metric per line, in name order. */
    void dump(std::ostream &os) const;

    /**
     * JSON snapshot:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     * {"count":..,"mean":..,"p50":..,"p99":..,"max":..}}}.
     */
    void writeJson(std::ostream &os) const;

    /**
     * writeJson into a string, byte-stable: keys are emitted in
     * sorted (std::map) order unconditionally, strings are fully
     * JSON-escaped (quotes, backslashes, control characters), and the
     * stream is freshly default-constructed so no ambient locale or
     * formatting state can perturb the bytes. Two snapshots of equal
     * registries are equal byte-for-byte on every platform.
     */
    std::string snapshotJson() const;

    /** Zero every metric (names and references stay valid). */
    void resetAll();

  private:
    // std::map keeps snapshots name-ordered; unique_ptr keeps metric
    // addresses stable across later registrations.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace uqsim

#endif // UQSIM_CORE_METRICS_HH
