/**
 * @file
 * Lightweight statistics primitives used throughout the models.
 *
 * Besides plain counters and gauges, the package offers a
 * time-weighted gauge (for utilization-style metrics that must be
 * integrated over simulated time). Named ownership and uniform
 * snapshots live in MetricsRegistry (core/metrics.hh).
 */

#ifndef UQSIM_CORE_STATS_HH
#define UQSIM_CORE_STATS_HH

#include <cstdint>

#include "core/histogram.hh"
#include "core/types.hh"

namespace uqsim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A gauge integrated over simulated time.
 *
 * Typical use: CPU utilization. Call update(now, v) whenever the value
 * changes; average(now) returns the time-weighted mean since the last
 * reset. Also tracks the peak value seen.
 */
class TimeWeightedGauge
{
  public:
    /** Record that the value becomes @p v at time @p now. */
    void update(Tick now, double v);

    /** Time-weighted average over [resetTime, now]. */
    double average(Tick now) const;

    /** Current value. */
    double current() const { return value_; }

    /** Largest value ever set since reset. */
    double peak() const { return peak_; }

    /** Restart integration at @p now keeping the current value. */
    void reset(Tick now);

  private:
    double value_ = 0.0;
    double peak_ = 0.0;
    double integral_ = 0.0;
    Tick lastUpdate_ = 0;
    Tick resetTime_ = 0;
};

/**
 * Tumbling-window mean/tail tracker: feeds a fresh histogram per
 * window so cluster-manager components can see *recent* latency and
 * load rather than since-boot aggregates.
 */
class WindowedStat
{
  public:
    explicit WindowedStat(Tick window = 100 * kTicksPerMs);

    /** Record a sample at time @p now. */
    void record(Tick now, std::uint64_t value);

    /** Mean of the most recently *completed* window (0 if none). */
    double windowMean() const { return lastMean_; }

    /** p99 of the most recently completed window (0 if none). */
    std::uint64_t windowP99() const { return lastP99_; }

    /** Sample count of the most recently completed window. */
    std::uint64_t windowCount() const { return lastCount_; }

    /** Force-close the current window at time @p now. */
    void roll(Tick now);

  private:
    void maybeRoll(Tick now);

    Tick window_;
    Tick windowStart_ = 0;
    Histogram current_;
    double lastMean_ = 0.0;
    std::uint64_t lastP99_ = 0;
    std::uint64_t lastCount_ = 0;
};

} // namespace uqsim

#endif // UQSIM_CORE_STATS_HH
