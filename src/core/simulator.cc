#include "core/simulator.hh"

#include "core/logging.hh"

namespace uqsim {

EventHandle
Simulator::scheduleAt(Tick when, EventCallback cb)
{
    if (when < now_)
        panic(strCat("scheduleAt(when=", when, ") is ", now_ - when,
                     " ticks in the past (now=", now_, ")"));
    return queue_.schedule(when, std::move(cb));
}

void
Simulator::addClockObserver(Tick interval, ClockObserverFn fn)
{
    if (interval == 0)
        panic("addClockObserver with zero interval");
    // The first boundary is one interval in; boundaries already behind
    // the clock would sample a world the observer never saw evolve.
    Tick first = interval;
    while (first <= now_)
        first += interval;
    observers_.push_back(ClockObserver{interval, first, std::move(fn)});
    nextBoundary_ = std::min(nextBoundary_, first);
}

void
Simulator::run()
{
    if (observers_.empty()) {
        // Observer-free fast path: no per-event boundary check.
        while (!queue_.empty()) {
            auto [when, cb] = queue_.popNext();
            now_ = when;
            cb();
        }
        return;
    }
    while (!queue_.empty()) {
        // Boundaries <= the next event time are due: every event
        // before them has executed, nothing at/after them has.
        maybeFireObservers(queue_.nextTick());
        auto [when, cb] = queue_.popNext();
        now_ = when;
        cb();
    }
}

void
Simulator::runUntil(Tick deadline)
{
    if (deadline < now_)
        panic(strCat("runUntil(", deadline, ") in the past; now=", now_));
    if (observers_.empty()) {
        while (!queue_.empty() && queue_.nextTick() <= deadline) {
            auto [when, cb] = queue_.popNext();
            now_ = when;
            cb();
        }
        now_ = deadline;
        return;
    }
    while (!queue_.empty() && queue_.nextTick() <= deadline) {
        maybeFireObservers(queue_.nextTick());
        auto [when, cb] = queue_.popNext();
        now_ = when;
        cb();
    }
    now_ = deadline;
    // The window is fully executed: flush every boundary it covers.
    maybeFireObservers(deadline);
}

} // namespace uqsim
