#include "core/simulator.hh"

#include "core/logging.hh"

namespace uqsim {

EventHandle
Simulator::scheduleAt(Tick when, EventCallback cb)
{
    if (when < now_)
        panic(strCat("scheduleAt(when=", when, ") is ", now_ - when,
                     " ticks in the past (now=", now_, ")"));
    return queue_.schedule(when, std::move(cb));
}

void
Simulator::run()
{
    while (!queue_.empty()) {
        auto [when, cb] = queue_.popNext();
        now_ = when;
        cb();
    }
}

void
Simulator::runUntil(Tick deadline)
{
    if (deadline < now_)
        panic(strCat("runUntil(", deadline, ") in the past; now=", now_));
    while (!queue_.empty() && queue_.nextTick() <= deadline) {
        auto [when, cb] = queue_.popNext();
        now_ = when;
        cb();
    }
    now_ = deadline;
}

} // namespace uqsim
