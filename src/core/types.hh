/**
 * @file
 * Fundamental simulation types and time unit helpers.
 *
 * The whole of uqsim runs on a single integer clock measured in
 * nanoseconds. Using an integer clock keeps the simulation fully
 * deterministic and makes event ordering exact.
 */

#ifndef UQSIM_CORE_TYPES_HH
#define UQSIM_CORE_TYPES_HH

#include <cstdint>

namespace uqsim {

/** Simulated time in nanoseconds since the start of the simulation. */
using Tick = std::uint64_t;

/** A signed time delta in nanoseconds. */
using TickDelta = std::int64_t;

/** Number of ticks (nanoseconds) per microsecond. */
constexpr Tick kTicksPerUs = 1000ull;
/** Number of ticks per millisecond. */
constexpr Tick kTicksPerMs = 1000ull * kTicksPerUs;
/** Number of ticks per second. */
constexpr Tick kTicksPerSec = 1000ull * kTicksPerMs;

/** Largest representable tick, used as an "infinitely far" deadline. */
constexpr Tick kMaxTick = ~0ull;

/** Convert a duration in (fractional) microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs));
}

/** Convert a duration in (fractional) milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kTicksPerMs));
}

/** Convert a duration in (fractional) seconds to ticks. */
constexpr Tick
secToTicks(double sec)
{
    return static_cast<Tick>(sec * static_cast<double>(kTicksPerSec));
}

/** Convert ticks to fractional microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to fractional milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/** Convert ticks to fractional seconds. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/** CPU work expressed in core clock cycles (frequency-independent). */
using Cycles = std::uint64_t;

/** Payload and footprint sizes in bytes. */
using Bytes = std::uint64_t;

constexpr Bytes kKiB = 1024ull;
constexpr Bytes kMiB = 1024ull * kKiB;
constexpr Bytes kGiB = 1024ull * kMiB;

} // namespace uqsim

#endif // UQSIM_CORE_TYPES_HH
