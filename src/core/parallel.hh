/**
 * @file
 * Conservative sharded parallel discrete-event engine.
 *
 * The world is partitioned into shards; each shard owns its own
 * EventQueue and clock and executes strictly sequentially, so all
 * single-threaded invariants of the model hold within a shard. Shards
 * are synchronized with a barrier-stepped conservative protocol:
 *
 *   round:  horizon = min(next event time over all shards) + lookahead
 *           every shard executes its events with time < horizon
 *   barrier: cross-shard events buffered during the round are merged
 *            into their destination queues in deterministic
 *            (when, source shard, source sequence) order
 *
 * The lookahead is the minimum cross-shard latency (for the network
 * worlds: the minimum inter-shard wire latency); every cross-shard
 * event must be scheduled at least `lookahead` ticks in the future,
 * which is what makes executing the window [minNext, minNext+lookahead)
 * safe: nothing sent during the round can land inside it.
 *
 * Determinism is by construction, independent of the worker-thread
 * count: shard execution is sequential, rounds are a pure function of
 * simulation state, and mailbox merges are sorted. Per-shard FNV-1a
 * digests compose into a run digest that is order-sensitive within a
 * shard and order-insensitive (commutative) across shards; with one
 * shard the composed digest is bit-identical to the single-threaded
 * Simulator digest. See docs/PARALLEL.md.
 */

#ifndef UQSIM_CORE_PARALLEL_HH
#define UQSIM_CORE_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/event_queue.hh"
#include "core/sim_context.hh"
#include "core/types.hh"

namespace uqsim {

/**
 * Sharded simulation driver: N queues, N clocks, one horizon.
 */
class ParallelSimulator
{
  public:
    struct Config
    {
        /** Number of shards (server groups with their own queue). */
        unsigned shards = 1;

        /**
         * Conservative synchronization window: the minimum cross-shard
         * event delay. kMaxTick (the default) declares that no
         * cross-shard channel exists — shards then run the whole
         * window in one round and any postToShard() is an error.
         */
        Tick lookahead = kMaxTick;

        /**
         * Worker threads executing shard rounds (capped to the shard
         * count). 1 runs rounds inline on the driving thread. The
         * execution digest does not depend on this value.
         */
        unsigned threads = 1;
    };

    explicit ParallelSimulator(Config config);
    ~ParallelSimulator();

    ParallelSimulator(const ParallelSimulator &) = delete;
    ParallelSimulator &operator=(const ParallelSimulator &) = delete;

    /** @return the scheduling context of shard @p shard. */
    SimContext context(unsigned shard);

    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Worker threads actually running rounds. */
    unsigned threads() const { return nthreads_; }

    Tick lookahead() const { return lookahead_; }

    /** @return shard @p shard's current clock. */
    Tick now(unsigned shard) const;

    /**
     * Register a periodic clock observer on @p shard (see
     * ClockObserver in core/simulator.hh for semantics): it fires at
     * every multiple of @p interval between that shard's events, never
     * as an event, so digests are untouched. Within a round the
     * callback for boundary B runs after every local event with
     * time < B; the conservative protocol guarantees no later mail can
     * land below B, so the lazily-fired sample is identical to one
     * taken eagerly — and therefore worker-thread-count invariant.
     * Register before driving the engine.
     */
    void addClockObserver(unsigned shard, Tick interval,
                          ClockObserverFn fn);

    /** Run until every queue and mailbox drains. */
    void run();

    /**
     * Run every shard up to @p deadline (events with time <= deadline
     * fire), then set all shard clocks to @p deadline.
     */
    void runUntil(Tick deadline);

    /** Convenience wrapper: runUntil(max shard clock + duration). */
    void runFor(Tick duration);

    /** Total events executed across all shards. */
    std::uint64_t eventsExecuted() const;

    /**
     * The composed run digest. One shard: that shard's FNV-1a digest
     * verbatim (bit-identical to the Simulator path). N shards: a
     * commutative mix of the per-shard digests, so the value is
     * independent of cross-shard execution interleaving — and thus of
     * the worker-thread count — while remaining order-sensitive within
     * each shard.
     */
    std::uint64_t executionDigest() const;

    /** Shard @p shard's own order-sensitive digest. */
    std::uint64_t shardDigest(unsigned shard) const;

  private:
    friend class SimContext;

    /** One shard: queue + clock + outbound mail sequence. */
    struct Shard
    {
        EventQueue queue;
        Tick now = 0;
        /** Sequence of cross-shard sends originating here. */
        std::uint64_t mailSeq = 0;
        /** Periodic sampling callbacks (empty on the common path). */
        std::vector<ClockObserver> observers;
        /** Earliest pending boundary (kMaxTick while none). */
        Tick nextBoundary = kMaxTick;
    };

    /** One buffered cross-shard event. */
    struct Mail
    {
        Tick when = 0;
        unsigned src = 0;
        std::uint64_t seq = 0;
        EventCallback cb;
    };

    /** Per-destination mailbox (locked by concurrent senders). */
    struct Mailbox
    {
        std::mutex mu;
        std::vector<Mail> msgs;
        /** Lock-free emptiness hint for the control loop. */
        bool maybeNonEmpty = false;
    };

    /** Buffer a cross-shard event (called via SimContext). */
    void postToShard(unsigned src, unsigned dst, Tick when,
                     EventCallback cb);

    /**
     * Merge all pending mail into destination queues, sorted by
     * (when, src, seq). Runs between rounds (no workers active).
     */
    void deliverMail();

    /** Earliest pending event time across all shard queues. */
    Tick minNextTick() const;

    /** Execute one round: every shard runs events with time < horizon. */
    void runRound(Tick horizon);

    /** Sequentially run shard @p s up to @p horizon. */
    void runShard(Shard &s, Tick horizon);

    /** Worker-pool body for worker @p index. */
    void workerLoop(unsigned index);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<Mailbox>> mail_;
    Tick lookahead_ = kMaxTick;

    // -- Worker pool (nthreads_ > 1 only) ------------------------------
    unsigned nthreads_ = 1;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0;
    unsigned pendingWorkers_ = 0;
    Tick roundHorizon_ = 0;
    bool shutdown_ = false;
};

} // namespace uqsim

#endif // UQSIM_CORE_PARALLEL_HH
