/**
 * @file
 * The top-level simulation driver.
 *
 * A Simulator owns the event queue and the simulated clock of a
 * single-shard world. Model components do not hold it directly: they
 * schedule through a SimContext (core/sim_context.hh), which converts
 * implicitly from `Simulator &`. The driver (test, example or bench)
 * calls run(), runUntil() or runFor(); sharded worlds use
 * ParallelSimulator (core/parallel.hh) instead.
 */

#ifndef UQSIM_CORE_SIMULATOR_HH
#define UQSIM_CORE_SIMULATOR_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/event_queue.hh"
#include "core/types.hh"

namespace uqsim {

/** Callback observing the clock at one interval boundary. */
using ClockObserverFn = std::function<void(Tick boundary)>;

/**
 * A periodic clock observer: fires at every multiple of @p interval,
 * *between* events, not as one. When the callback for boundary B runs,
 * every event with time < B has executed and no event with time >= B
 * has — the callback sees the world exactly as of instant B. Because
 * observers never enter the event queue, they leave the execution
 * digest untouched: a run with observers is bit-identical to one
 * without (the basis of the obs layer's digest guarantee).
 *
 * Observers must not schedule events or mutate model state; they are a
 * read-only sampling surface. Firing is lazy — a boundary with no
 * event at or after it yet fires as soon as one appears, or at the
 * runUntil() deadline — and deterministic: boundaries fire in
 * registration order at equal ticks.
 */
struct ClockObserver
{
    Tick interval = 0;
    Tick next = 0;
    ClockObserverFn fn;
};

/** Fire every observer boundary <= @p limit (registration order). */
inline void
fireClockObservers(std::vector<ClockObserver> &observers, Tick limit)
{
    for (ClockObserver &o : observers) {
        while (o.next <= limit) {
            o.fn(o.next);
            if (o.next > kMaxTick - o.interval) {
                o.next = kMaxTick; // saturate instead of wrapping
                break;
            }
            o.next += o.interval;
        }
    }
}

/** The earliest pending boundary (kMaxTick when none). */
inline Tick
nextClockBoundary(const std::vector<ClockObserver> &observers)
{
    Tick next = kMaxTick;
    for (const ClockObserver &o : observers)
        next = std::min(next, o.next);
    return next;
}

/**
 * Discrete-event simulation driver: clock + event queue.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback @p delay ticks from now.
     * @return a cancellation handle.
     */
    EventHandle
    schedule(Tick delay, EventCallback cb)
    {
        return queue_.schedule(now_ + delay, std::move(cb));
    }

    /**
     * Schedule a callback at absolute time @p when.
     * Scheduling in the past is an internal error.
     */
    EventHandle scheduleAt(Tick when, EventCallback cb);

    /** Run until the event queue drains. */
    void run();

    /**
     * Run events with firing time <= @p deadline, then set the clock
     * to @p deadline. Events scheduled beyond the deadline stay queued.
     */
    void runUntil(Tick deadline);

    /** Convenience wrapper: runUntil(now() + duration). */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /**
     * Register a periodic clock observer firing every @p interval
     * ticks, starting at tick @p interval (see ClockObserver for the
     * exact semantics and restrictions). Register before driving the
     * simulation; zero intervals are an internal error.
     */
    void addClockObserver(Tick interval, ClockObserverFn fn);

    /** @return the underlying event queue (stats, tests). */
    const EventQueue &queue() const { return queue_; }

    /** @return number of events executed so far. */
    std::uint64_t eventsExecuted() const { return queue_.executedCount(); }

    /**
     * Running FNV-1a hash over (tick, sequence) of every executed
     * event: a cheap, order-sensitive fingerprint of the run. Two runs
     * with the same seed must produce identical digests; see
     * tests/determinism_test.cc.
     */
    std::uint64_t executionDigest() const
    {
        return queue_.executionDigest();
    }

  private:
    /** SimContext schedules straight into the queue/clock. */
    friend class SimContext;

    /**
     * Fire boundaries <= @p limit. The cached earliest-boundary tick
     * keeps the per-event cost of an idle observer at one compare.
     */
    void
    maybeFireObservers(Tick limit)
    {
        if (limit < nextBoundary_)
            return;
        fireClockObservers(observers_, limit);
        nextBoundary_ = nextClockBoundary(observers_);
    }

    EventQueue queue_;
    Tick now_ = 0;
    /** Periodic sampling callbacks (empty on the common path). */
    std::vector<ClockObserver> observers_;
    /** Earliest pending boundary (kMaxTick while none registered). */
    Tick nextBoundary_ = kMaxTick;
};

} // namespace uqsim

#endif // UQSIM_CORE_SIMULATOR_HH
