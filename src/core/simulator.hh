/**
 * @file
 * The top-level simulation driver.
 *
 * A Simulator owns the event queue and the simulated clock of a
 * single-shard world. Model components do not hold it directly: they
 * schedule through a SimContext (core/sim_context.hh), which converts
 * implicitly from `Simulator &`. The driver (test, example or bench)
 * calls run(), runUntil() or runFor(); sharded worlds use
 * ParallelSimulator (core/parallel.hh) instead.
 */

#ifndef UQSIM_CORE_SIMULATOR_HH
#define UQSIM_CORE_SIMULATOR_HH

#include <cstdint>

#include "core/event_queue.hh"
#include "core/types.hh"

namespace uqsim {

/**
 * Discrete-event simulation driver: clock + event queue.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback @p delay ticks from now.
     * @return a cancellation handle.
     */
    EventHandle
    schedule(Tick delay, EventCallback cb)
    {
        return queue_.schedule(now_ + delay, std::move(cb));
    }

    /**
     * Schedule a callback at absolute time @p when.
     * Scheduling in the past is an internal error.
     */
    EventHandle scheduleAt(Tick when, EventCallback cb);

    /** Run until the event queue drains. */
    void run();

    /**
     * Run events with firing time <= @p deadline, then set the clock
     * to @p deadline. Events scheduled beyond the deadline stay queued.
     */
    void runUntil(Tick deadline);

    /** Convenience wrapper: runUntil(now() + duration). */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /** @return the underlying event queue (stats, tests). */
    const EventQueue &queue() const { return queue_; }

    /** @return number of events executed so far. */
    std::uint64_t eventsExecuted() const { return queue_.executedCount(); }

    /**
     * Running FNV-1a hash over (tick, sequence) of every executed
     * event: a cheap, order-sensitive fingerprint of the run. Two runs
     * with the same seed must produce identical digests; see
     * tests/determinism_test.cc.
     */
    std::uint64_t executionDigest() const
    {
        return queue_.executionDigest();
    }

  private:
    /** SimContext schedules straight into the queue/clock. */
    friend class SimContext;

    EventQueue queue_;
    Tick now_ = 0;
};

} // namespace uqsim

#endif // UQSIM_CORE_SIMULATOR_HH
