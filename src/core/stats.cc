#include "core/stats.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim {

void
TimeWeightedGauge::update(Tick now, double v)
{
    if (now < lastUpdate_)
        panic("TimeWeightedGauge::update with time going backwards");
    integral_ += value_ * static_cast<double>(now - lastUpdate_);
    value_ = v;
    peak_ = std::max(peak_, v);
    lastUpdate_ = now;
}

double
TimeWeightedGauge::average(Tick now) const
{
    const Tick span = now - resetTime_;
    if (span == 0)
        return value_;
    const double total =
        integral_ + value_ * static_cast<double>(now - lastUpdate_);
    return total / static_cast<double>(span);
}

void
TimeWeightedGauge::reset(Tick now)
{
    integral_ = 0.0;
    peak_ = value_;
    lastUpdate_ = now;
    resetTime_ = now;
}

WindowedStat::WindowedStat(Tick window) : window_(window)
{
    if (window == 0)
        fatal("WindowedStat with zero window");
}

void
WindowedStat::maybeRoll(Tick now)
{
    if (now >= windowStart_ + window_)
        roll(now);
}

void
WindowedStat::record(Tick now, std::uint64_t value)
{
    maybeRoll(now);
    current_.record(value);
}

void
WindowedStat::roll(Tick now)
{
    lastMean_ = current_.mean();
    lastP99_ = current_.p99();
    lastCount_ = current_.count();
    current_.reset();
    // Align the new window to the current time so long idle periods do
    // not generate a burst of empty windows.
    windowStart_ = now;
}

} // namespace uqsim
