#include "core/histogram.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim {

Histogram::Histogram(unsigned sub_bucket_bits)
    : subBucketBits_(sub_bucket_bits),
      subBucketCount_(1ull << sub_bucket_bits)
{
    if (sub_bucket_bits < 1 || sub_bucket_bits > 16)
        fatal("Histogram sub_bucket_bits out of range [1,16]");
    // One linear region covering [0, 2*subBucketCount), then one
    // half-octave of subBucketCount/2... simplest correct scheme:
    // octaves 0..63, each with subBucketCount buckets. Some low
    // octaves alias to the same values, which is fine (they are just
    // never used past the first).
    buckets_.assign(64 * subBucketCount_, 0);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    if (value < subBucketCount_)
        return static_cast<std::size_t>(value);
    // Position of the highest set bit.
    const unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(value));
    // Octave relative to the linear region; for octave o, values lie in
    // [2^(o + subBucketBits - 1), 2^(o + subBucketBits)) and the top
    // subBucketBits bits select the (upper half of the) sub-buckets.
    const unsigned octave = msb - subBucketBits_ + 1;
    const std::uint64_t sub = (value >> octave) & (subBucketCount_ - 1);
    return static_cast<std::size_t>(octave) * subBucketCount_ + sub;
}

std::uint64_t
Histogram::bucketUpperBound(std::size_t index) const
{
    if (index < subBucketCount_)
        return static_cast<std::uint64_t>(index);
    const std::size_t octave = index / subBucketCount_;
    const std::uint64_t sub = index % subBucketCount_;
    // Inverse of bucketIndex: values in this bucket satisfy
    // (value >> octave) == sub, so the largest is ((sub+1) << octave) - 1.
    return ((sub + 1) << octave) - 1;
}

void
Histogram::record(std::uint64_t value)
{
    record(value, 1);
}

void
Histogram::record(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = bucketIndex(value);
    buckets_[std::min(idx, buckets_.size() - 1)] += n;
    count_ += n;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value) * static_cast<double>(n);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    // The extremes are tracked exactly; answer them exactly rather
    // than with a bucket upper bound (which can overshoot min_).
    if (p <= 0.0)
        return min_;
    if (p >= 100.0)
        return max_;
    // Rank of the requested sample (1-based, ceil).
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p / 100.0 *
                                      static_cast<double>(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::clamp(bucketUpperBound(i), min_, max_);
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.subBucketBits_ != subBucketBits_)
        panic("Histogram::merge with different resolution");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = ~0ull;
    max_ = 0;
    sum_ = 0.0;
}

} // namespace uqsim
