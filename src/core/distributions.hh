/**
 * @file
 * Composable random distributions for service times, payload sizes and
 * user populations.
 *
 * Distributions are immutable descriptions; sampling takes the Rng
 * explicitly so components can own their streams. The small-object
 * value type Dist makes it cheap to store distributions in model
 * configuration structs.
 */

#ifndef UQSIM_CORE_DISTRIBUTIONS_HH
#define UQSIM_CORE_DISTRIBUTIONS_HH

#include <memory>
#include <utility>
#include <vector>

#include "core/rng.hh"

namespace uqsim {

/** Abstract sampling interface. */
class DistImpl
{
  public:
    virtual ~DistImpl() = default;
    /** Draw one sample. */
    virtual double sample(Rng &rng) const = 0;
    /** Analytic (or configured) mean of the distribution. */
    virtual double mean() const = 0;
};

/**
 * Value-semantics handle to an immutable distribution.
 *
 * Default-constructed Dist is the constant 0.
 */
class Dist
{
  public:
    Dist();

    explicit Dist(std::shared_ptr<const DistImpl> impl)
        : impl_(std::move(impl))
    {}

    /** Draw one sample. */
    double sample(Rng &rng) const { return impl_->sample(rng); }

    /** Mean of the distribution. */
    double mean() const { return impl_->mean(); }

    // -- Factories ------------------------------------------------------

    /** Degenerate distribution: always @p value. */
    static Dist constant(double value);

    /** Uniform on [lo, hi). */
    static Dist uniform(double lo, double hi);

    /** Exponential with the given mean. */
    static Dist exponential(double mean);

    /**
     * Log-normal parameterized by its *mean* and the sigma of the
     * underlying normal (heavier tail for larger sigma). This is the
     * workhorse for service-time models: interactive services show
     * log-normal-ish latencies with sigma around 0.3-1.0.
     */
    static Dist lognormalMean(double mean, double sigma);

    /** Bounded Pareto with shape alpha on [lo, hi] (heavy tails). */
    static Dist boundedPareto(double alpha, double lo, double hi);

    /**
     * Finite mixture: picks component i with probability weight[i]
     * (weights are normalized internally).
     */
    static Dist mixture(std::vector<std::pair<double, Dist>> weighted);

    /** This distribution scaled by a constant factor. */
    Dist scaled(double factor) const;

    /** This distribution shifted by a constant offset. */
    Dist shifted(double offset) const;

    /** Samples clamped below at @p lo. */
    Dist clampedMin(double lo) const;

  private:
    std::shared_ptr<const DistImpl> impl_;
};

/**
 * Zipf-distributed integer ranks in [0, n), with exponent s.
 *
 * Uses an inverted-CDF table (built once) so sampling is O(log n).
 * Rank 0 is the most popular item. Used for user-request skew and
 * cache/DB key popularity.
 */
class ZipfDistribution
{
  public:
    /**
     * @param n   population size (> 0)
     * @param s   Zipf exponent (0 = uniform; ~1 = classic web skew)
     */
    ZipfDistribution(std::size_t n, double s);

    /** Draw a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Population size. */
    std::size_t size() const { return cdf_.size(); }

    /** Exponent used. */
    double exponent() const { return s_; }

    /**
     * Fraction of total probability mass held by the top @p k ranks
     * (analytic; used by tests and by the skew experiments).
     */
    double topKMass(std::size_t k) const;

  private:
    std::vector<double> cdf_;
    double s_;
};

} // namespace uqsim

#endif // UQSIM_CORE_DISTRIBUTIONS_HH
