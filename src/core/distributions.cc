#include "core/distributions.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace uqsim {

namespace {

class ConstantDist : public DistImpl
{
  public:
    explicit ConstantDist(double v) : v_(v) {}
    double sample(Rng &) const override { return v_; }
    double mean() const override { return v_; }

  private:
    double v_;
};

class UniformDist : public DistImpl
{
  public:
    UniformDist(double lo, double hi) : lo_(lo), hi_(hi)
    {
        if (hi < lo)
            fatal("uniform distribution with hi < lo");
    }
    double sample(Rng &rng) const override { return rng.uniform(lo_, hi_); }
    double mean() const override { return 0.5 * (lo_ + hi_); }

  private:
    double lo_, hi_;
};

class ExponentialDist : public DistImpl
{
  public:
    explicit ExponentialDist(double mean) : mean_(mean)
    {
        if (mean <= 0.0)
            fatal("exponential distribution with non-positive mean");
    }
    double sample(Rng &rng) const override { return rng.exponential(mean_); }
    double mean() const override { return mean_; }

  private:
    double mean_;
};

class LogNormalDist : public DistImpl
{
  public:
    LogNormalDist(double mean, double sigma) : mean_(mean), sigma_(sigma)
    {
        if (mean <= 0.0 || sigma < 0.0)
            fatal("lognormal distribution with invalid parameters");
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); solve for mu.
        mu_ = std::log(mean) - 0.5 * sigma * sigma;
    }
    double
    sample(Rng &rng) const override
    {
        return rng.lognormal(mu_, sigma_);
    }
    double mean() const override { return mean_; }

  private:
    double mean_, sigma_, mu_;
};

class BoundedParetoDist : public DistImpl
{
  public:
    BoundedParetoDist(double alpha, double lo, double hi)
        : alpha_(alpha), lo_(lo), hi_(hi)
    {
        if (lo <= 0.0 || hi <= lo || alpha <= 0.0)
            fatal("bounded pareto with invalid parameters");
    }
    double
    sample(Rng &rng) const override
    {
        return rng.boundedPareto(alpha_, lo_, hi_);
    }
    double
    mean() const override
    {
        if (alpha_ == 1.0)
            return std::log(hi_ / lo_) * lo_ * hi_ / (hi_ - lo_);
        const double la = std::pow(lo_, alpha_);
        const double num = la / (1.0 - std::pow(lo_ / hi_, alpha_)) *
                           (alpha_ / (alpha_ - 1.0)) *
                           (1.0 / std::pow(lo_, alpha_ - 1.0) -
                            1.0 / std::pow(hi_, alpha_ - 1.0));
        return num;
    }

  private:
    double alpha_, lo_, hi_;
};

class MixtureDist : public DistImpl
{
  public:
    explicit MixtureDist(std::vector<std::pair<double, Dist>> weighted)
        : components_(std::move(weighted))
    {
        if (components_.empty())
            fatal("mixture distribution with no components");
        double total = 0.0;
        for (const auto &[w, d] : components_) {
            if (w < 0.0)
                fatal("mixture distribution with negative weight");
            total += w;
        }
        if (total <= 0.0)
            fatal("mixture distribution with zero total weight");
        double cum = 0.0;
        for (const auto &[w, d] : components_) {
            cum += w / total;
            cdf_.push_back(cum);
        }
        cdf_.back() = 1.0;
    }

    double
    sample(Rng &rng) const override
    {
        const double u = rng.uniform01();
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        const std::size_t idx =
            std::min<std::size_t>(it - cdf_.begin(), cdf_.size() - 1);
        return components_[idx].second.sample(rng);
    }

    double
    mean() const override
    {
        double total = 0.0, m = 0.0;
        for (const auto &[w, d] : components_)
            total += w;
        for (const auto &[w, d] : components_)
            m += (w / total) * d.mean();
        return m;
    }

  private:
    std::vector<std::pair<double, Dist>> components_;
    std::vector<double> cdf_;
};

class ScaledDist : public DistImpl
{
  public:
    ScaledDist(Dist inner, double factor, double offset)
        : inner_(std::move(inner)), factor_(factor), offset_(offset)
    {}
    double
    sample(Rng &rng) const override
    {
        return inner_.sample(rng) * factor_ + offset_;
    }
    double mean() const override { return inner_.mean() * factor_ + offset_; }

  private:
    Dist inner_;
    double factor_, offset_;
};

class ClampedMinDist : public DistImpl
{
  public:
    ClampedMinDist(Dist inner, double lo) : inner_(std::move(inner)), lo_(lo)
    {}
    double
    sample(Rng &rng) const override
    {
        return std::max(lo_, inner_.sample(rng));
    }
    // Approximation: clamping shifts the mean up slightly; report the
    // configured inner mean, which callers use for capacity planning.
    double mean() const override { return std::max(lo_, inner_.mean()); }

  private:
    Dist inner_;
    double lo_;
};

} // namespace

Dist::Dist() : impl_(std::make_shared<ConstantDist>(0.0)) {}

Dist
Dist::constant(double value)
{
    return Dist(std::make_shared<ConstantDist>(value));
}

Dist
Dist::uniform(double lo, double hi)
{
    return Dist(std::make_shared<UniformDist>(lo, hi));
}

Dist
Dist::exponential(double mean)
{
    return Dist(std::make_shared<ExponentialDist>(mean));
}

Dist
Dist::lognormalMean(double mean, double sigma)
{
    return Dist(std::make_shared<LogNormalDist>(mean, sigma));
}

Dist
Dist::boundedPareto(double alpha, double lo, double hi)
{
    return Dist(std::make_shared<BoundedParetoDist>(alpha, lo, hi));
}

Dist
Dist::mixture(std::vector<std::pair<double, Dist>> weighted)
{
    return Dist(std::make_shared<MixtureDist>(std::move(weighted)));
}

Dist
Dist::scaled(double factor) const
{
    return Dist(std::make_shared<ScaledDist>(*this, factor, 0.0));
}

Dist
Dist::shifted(double offset) const
{
    return Dist(std::make_shared<ScaledDist>(*this, 1.0, offset));
}

Dist
Dist::clampedMin(double lo) const
{
    return Dist(std::make_shared<ClampedMinDist>(*this, lo));
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s)
{
    if (n == 0)
        fatal("ZipfDistribution with empty population");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = total;
    }
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfDistribution::sample(Rng &rng) const
{
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return std::min<std::size_t>(it - cdf_.begin(), cdf_.size() - 1);
}

double
ZipfDistribution::topKMass(std::size_t k) const
{
    if (k == 0)
        return 0.0;
    if (k >= cdf_.size())
        return 1.0;
    return cdf_[k - 1];
}

} // namespace uqsim
