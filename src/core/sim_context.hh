/**
 * @file
 * The scheduling handle every model component holds.
 *
 * A SimContext names the execution shard a component belongs to and is
 * the only scheduling surface model code may use: components never
 * touch a Simulator or EventQueue directly. The handle is a cheap
 * value type over (event queue, clock, shard id, engine):
 *
 *  - In a single-shard world it wraps a plain Simulator; the implicit
 *    conversion from `Simulator &` keeps drivers (tests, benches,
 *    examples) that construct components with a Simulator compiling
 *    unchanged.
 *  - In a sharded world it is minted by ParallelSimulator::context(i)
 *    and schedules into shard i's own queue and clock. Cross-shard
 *    communication goes through postToShard(), which enforces the
 *    conservative lookahead and delivers through the engine's
 *    mailboxes at the next synchronization barrier.
 *
 * Scheduling and clock reads are shard-local and wait-free; only
 * postToShard() to a *different* shard takes a (per-destination) lock.
 * See docs/PARALLEL.md for the migration guide from the old
 * `Simulator &` API.
 */

#ifndef UQSIM_CORE_SIM_CONTEXT_HH
#define UQSIM_CORE_SIM_CONTEXT_HH

#include <cstdint>

#include "core/event_queue.hh"
#include "core/simulator.hh"
#include "core/types.hh"

namespace uqsim {

class ParallelSimulator;

/**
 * Shard-addressed scheduling handle (see file comment).
 */
class SimContext
{
  public:
    /** Null handle; must be rebound before use. */
    SimContext() = default;

    /** Single-shard context over a plain Simulator (implicit). */
    SimContext(Simulator &sim)
        : queue_(&sim.queue_), now_(&sim.now_), sim_(&sim)
    {}

    /** @return the current simulated time of this shard. */
    Tick now() const { return *now_; }

    /**
     * Schedule a callback @p delay ticks from now on this shard.
     * @return a cancellation handle.
     */
    EventHandle
    schedule(Tick delay, EventCallback cb)
    {
        return queue_->schedule(*now_ + delay, std::move(cb));
    }

    /**
     * Schedule a callback at absolute time @p when on this shard.
     * Scheduling in the past is an internal error; the panic reports
     * the offending when/now ticks and the shard.
     */
    EventHandle
    scheduleAt(Tick when, EventCallback cb)
    {
        if (when < *now_)
            pastScheduleError(when);
        return queue_->schedule(when, std::move(cb));
    }

    /**
     * Schedule @p cb on shard @p dst, @p delay ticks from now.
     *
     * Same-shard posts degrade to schedule(). Cross-shard posts
     * require a sharded world and `delay >= lookahead()` (the
     * conservative synchronization window); violating either is an
     * internal error. Cross-shard events are buffered in the engine's
     * mailbox for @p dst and merged into its queue at the next barrier
     * in deterministic (when, source shard, source sequence) order, so
     * no cancellation handle is returned.
     */
    void postToShard(unsigned dst, Tick delay, EventCallback cb);

    /** @return this component's shard id (0 in single-shard worlds). */
    unsigned shard() const { return shard_; }

    /** @return the number of shards in the world (1 if unsharded). */
    unsigned shardCount() const;

    /**
     * @return the conservative lookahead: the minimum cross-shard
     * delay, i.e. the minimum inter-shard network latency. kMaxTick in
     * single-shard worlds and in sharded worlds with no cross-shard
     * channels.
     */
    Tick lookahead() const;

    /** @return true when this context belongs to a sharded world. */
    bool sharded() const { return engine_ != nullptr; }

    /**
     * Register a periodic clock observer on this shard: @p fn fires at
     * every multiple of @p interval of this shard's clock, between
     * events rather than as one, so the execution digest is untouched
     * (see ClockObserver in core/simulator.hh). The observer must be
     * read-only over model state and must outlive all driving of the
     * world; there is no unregistration. Register before running.
     */
    void addClockObserver(Tick interval, ClockObserverFn fn);

    // -- Driver surface (top-level harnesses only, never event code) --

    /**
     * Run the *whole world* (every shard) until its queues drain.
     * Driver-only: must not be called from inside an event callback.
     */
    void run();

    /** Run the whole world up to @p deadline (clocks end there). */
    void runUntil(Tick deadline);

    /** Convenience wrapper: runUntil(now() + duration). */
    void runFor(Tick duration) { runUntil(*now_ + duration); }

    // -- Shard-local observability ------------------------------------

    /** Events executed by *this shard* so far. */
    std::uint64_t eventsExecuted() const { return queue_->executedCount(); }

    /**
     * This shard's running FNV-1a execution digest (order-sensitive
     * within the shard). The world-level digest composes these; see
     * ParallelSimulator::executionDigest().
     */
    std::uint64_t executionDigest() const
    {
        return queue_->executionDigest();
    }

    /** @return this shard's underlying event queue (stats, tests). */
    const EventQueue &queue() const { return *queue_; }

  private:
    friend class ParallelSimulator;

    /** Shard-addressed context; minted by ParallelSimulator. */
    SimContext(EventQueue &queue, const Tick &now, unsigned shard,
               ParallelSimulator &engine)
        : queue_(&queue), now_(&now), shard_(shard), engine_(&engine)
    {}

    [[noreturn]] void pastScheduleError(Tick when) const;

    EventQueue *queue_ = nullptr;
    const Tick *now_ = nullptr;
    unsigned shard_ = 0;
    /** Non-null in single-shard worlds (drives run*()). */
    Simulator *sim_ = nullptr;
    /** Non-null in sharded worlds. */
    ParallelSimulator *engine_ = nullptr;
};

} // namespace uqsim

#endif // UQSIM_CORE_SIM_CONTEXT_HH
