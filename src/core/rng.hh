/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * uqsim uses xoshiro256++ seeded through splitmix64. Every stochastic
 * component draws from an explicitly passed Rng so that a run is fully
 * reproducible from its seed, and independent components can use
 * independent streams (fork()).
 */

#ifndef UQSIM_CORE_RNG_HH
#define UQSIM_CORE_RNG_HH

#include <array>
#include <cstdint>

namespace uqsim {

/**
 * xoshiro256++ generator with convenience draws.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Raw 64 random bits. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponential variate with the given mean. */
    double exponential(double mean);

    /** Normal variate (Box-Muller). */
    double normal(double mean, double stddev);

    /** Log-normal variate parameterized by underlying mu/sigma. */
    double lognormal(double mu, double sigma);

    /** Bounded Pareto variate with shape alpha on [lo, hi]. */
    double boundedPareto(double alpha, double lo, double hi);

    /** Bernoulli trial. */
    bool bernoulli(double p) { return uniform01() < p; }

    /**
     * Fork an independent stream: returns a generator seeded from this
     * one, then jumps this generator forward so the streams do not
     * overlap in practice.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> s_;
};

} // namespace uqsim

#endif // UQSIM_CORE_RNG_HH
