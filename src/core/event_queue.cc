#include "core/event_queue.hh"

#include <utility>

#include "core/logging.hh"

namespace uqsim {

namespace detail {

EventNode *
EventPool::allocate()
{
    if (!freeList) {
        chunks.push_back(std::make_unique<EventNode[]>(kChunkNodes));
        EventNode *arr = chunks.back().get();
        for (std::size_t i = kChunkNodes; i-- > 0;) {
            arr[i].next = freeList;
            freeList = &arr[i];
        }
    }
    EventNode *node = freeList;
    freeList = node->next;
    return node;
}

void
EventPool::release(EventNode *node)
{
    node->cb = nullptr; // drop captured resources promptly
    node->next = freeList;
    freeList = node;
}

} // namespace detail

namespace {

/** 64-bit FNV-1a step over one 64-bit word. */
inline std::uint64_t
fnv1aWord(std::uint64_t hash, std::uint64_t word)
{
    hash ^= word;
    return hash * 1099511628211ull;
}

} // namespace

EventQueue::EventQueue()
    : pool_(std::make_shared<detail::EventPool>()),
      buckets_(kBuckets),
      occWords_(kWords, 0),
      sumWords_(kWords / 64, 0)
{}

EventHandle
EventQueue::schedule(Tick when, EventCallback cb)
{
    detail::EventNode *node = pool_->allocate();
    node->when = when;
    node->seq = nextSeq_++;
    node->cb = std::move(cb);
    node->next = nullptr;
    node->handleRefs = 1; // adopted by the returned handle
    node->status = detail::EventStatus::Scheduled;
    node->inQueue = true;

    // Unsigned compare also routes when < cursor_ (never produced by
    // Simulator, which forbids scheduling in the past) to the heap,
    // which handles arbitrary ticks.
    if (when - cursor_ < kBuckets) {
        Bucket &b = buckets_[when & kBucketMask];
        if (b.tail) {
            b.tail->next = node;
        } else {
            b.head = node;
            markOccupied(when & kBucketMask);
        }
        b.tail = node;
        ++bucketNodes_;
    } else {
        heap_.push(HeapEntry{when, node->seq, node});
    }
    ++pool_->liveCount;
    return EventHandle(pool_, node);
}

void
EventQueue::markOccupied(std::size_t bucket) const
{
    occWords_[bucket >> 6] |= 1ull << (bucket & 63);
    sumWords_[bucket >> 12] |= 1ull << ((bucket >> 6) & 63);
}

void
EventQueue::clearOccupied(std::size_t bucket) const
{
    occWords_[bucket >> 6] &= ~(1ull << (bucket & 63));
    if (occWords_[bucket >> 6] == 0)
        sumWords_[bucket >> 12] &= ~(1ull << ((bucket >> 6) & 63));
}

void
EventQueue::retire(detail::EventNode *node) const
{
    node->inQueue = false;
    if (node->handleRefs == 0)
        pool_->release(node);
}

std::size_t
EventQueue::nextOccupiedWord(std::size_t word) const
{
    // Ring-forward scan of the summary bitmap for the first non-empty
    // occupancy word strictly after `word`; after a full wrap the
    // current word itself may be returned again (its low, not-yet-
    // visited buckets are the ring-farthest region).
    const std::size_t nSum = sumWords_.size();
    const std::size_t bit = word & 63;
    const std::uint64_t afterMask = bit == 63 ? 0 : ~0ull << (bit + 1);
    for (std::size_t i = 0; i <= nSum; ++i) {
        const std::size_t idx = ((word >> 6) + i) % nSum;
        std::uint64_t sbits = sumWords_[idx];
        if (i == 0)
            sbits &= afterMask;
        else if (i == nSum)
            sbits &= ~afterMask;
        if (sbits)
            return (idx << 6) +
                   static_cast<std::size_t>(__builtin_ctzll(sbits));
    }
    return kInvalidBucket;
}

std::size_t
EventQueue::firstLiveBucket() const
{
    if (bucketNodes_ == 0)
        return kInvalidBucket;

    // Walk the occupancy bitmap ring-forward from the cursor bucket.
    // Live bucketed events have ticks in [cursor_, cursor_+kBuckets),
    // so ring order is tick order; cancelled nodes (whose ticks may
    // trail the cursor) are purged as they are encountered.
    const std::size_t start =
        static_cast<std::size_t>(cursor_) & kBucketMask;
    std::size_t word = start >> 6;
    std::uint64_t bits = occWords_[word] & (~0ull << (start & 63));
    while (true) {
        while (bits) {
            const std::size_t bucket =
                (word << 6) +
                static_cast<std::size_t>(__builtin_ctzll(bits));
            Bucket &b = buckets_[bucket];
            while (b.head &&
                   b.head->status == detail::EventStatus::Cancelled) {
                detail::EventNode *dead = b.head;
                b.head = dead->next;
                --bucketNodes_;
                retire(dead);
            }
            if (b.head)
                return bucket;
            b.tail = nullptr;
            clearOccupied(bucket);
            if (bucketNodes_ == 0)
                return kInvalidBucket;
            bits &= bits - 1;
        }
        word = nextOccupiedWord(word);
        if (word == kInvalidBucket)
            return kInvalidBucket;
        bits = occWords_[word];
    }
}

void
EventQueue::purgeHeapTop() const
{
    while (!heap_.empty() &&
           heap_.top().node->status == detail::EventStatus::Cancelled) {
        detail::EventNode *dead = heap_.top().node;
        heap_.pop();
        retire(dead);
    }
}

detail::EventNode *
EventQueue::peekNext(std::size_t *bucketIndex) const
{
    const std::size_t bucket = firstLiveBucket();
    detail::EventNode *fromBucket =
        bucket == kInvalidBucket ? nullptr : buckets_[bucket].head;
    purgeHeapTop();
    detail::EventNode *fromHeap =
        heap_.empty() ? nullptr : heap_.top().node;

    detail::EventNode *winner;
    if (fromBucket && fromHeap) {
        const bool bucketWins =
            fromBucket->when != fromHeap->when
                ? fromBucket->when < fromHeap->when
                : fromBucket->seq < fromHeap->seq;
        winner = bucketWins ? fromBucket : fromHeap;
    } else {
        winner = fromBucket ? fromBucket : fromHeap;
    }
    *bucketIndex =
        (winner && winner == fromBucket) ? bucket : kInvalidBucket;
    return winner;
}

Tick
EventQueue::nextTick() const
{
    std::size_t bucket;
    const detail::EventNode *node = peekNext(&bucket);
    if (!node)
        panic("EventQueue::nextTick() on empty queue");
    return node->when;
}

std::pair<Tick, EventCallback>
EventQueue::popNext()
{
    std::size_t bucket;
    detail::EventNode *node = peekNext(&bucket);
    if (!node)
        panic("EventQueue::popNext() on empty queue");

    if (bucket != kInvalidBucket) {
        Bucket &b = buckets_[bucket];
        b.head = node->next;
        if (!b.head) {
            b.tail = nullptr;
            clearOccupied(bucket);
        }
        --bucketNodes_;
    } else {
        heap_.pop();
    }

    node->status = detail::EventStatus::Fired;
    --pool_->liveCount;
    ++executed_;
    digest_ = fnv1aWord(fnv1aWord(digest_, node->when), node->seq);
    if (node->when > cursor_)
        cursor_ = node->when;

    // Move the callback out before recycling: it may schedule new
    // events, which mutates buckets/heap (and may reuse this node).
    EventCallback cb = std::move(node->cb);
    const Tick when = node->when;
    retire(node);
    return {when, std::move(cb)};
}

} // namespace uqsim
