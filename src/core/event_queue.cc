#include "core/event_queue.hh"

#include <utility>

#include "core/logging.hh"

namespace uqsim {

EventQueue::EventQueue()
    : liveCount_(std::make_shared<std::uint64_t>(0))
{}

EventHandle
EventQueue::schedule(Tick when, EventCallback cb)
{
    auto state = std::make_shared<EventHandle::State>();
    state->liveCount = liveCount_;
    heap_.push(Entry{when, nextSeq_++, std::move(cb), state});
    ++(*liveCount_);
    return EventHandle(std::move(state));
}

void
EventQueue::purgeHead() const
{
    while (!heap_.empty() && heap_.top().state->cancelled)
        heap_.pop();
}

Tick
EventQueue::nextTick() const
{
    purgeHead();
    if (heap_.empty())
        panic("EventQueue::nextTick() on empty queue");
    return heap_.top().when;
}

std::pair<Tick, EventCallback>
EventQueue::popNext()
{
    purgeHead();
    if (heap_.empty())
        panic("EventQueue::popNext() on empty queue");

    // Move the entry out before the caller runs it: the callback may
    // schedule new events, which mutates the heap.
    Entry entry = heap_.top();
    heap_.pop();
    entry.state->fired = true;
    --(*liveCount_);
    ++executed_;
    return {entry.when, std::move(entry.cb)};
}

} // namespace uqsim
