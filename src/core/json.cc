#include "core/json.hh"

#include <cctype>
#include <cstdint>

#include "core/logging.hh"

namespace uqsim::json {

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    parse(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size()) {
            error_ = strCat("trailing JSON at offset ", pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        error_ = strCat(msg, " at offset ", pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    parseValue(Value &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of JSON");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"')
            return parseString(out);
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n')
            return parseNull(out);
        return parseNumber(out);
    }

    bool
    parseObject(Value &out)
    {
        out.type = Value::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Value value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(key.string, std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.type = Value::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(Value &out)
    {
        out.type = Value::Type::String;
        ++pos_; // '"'
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                switch (text_[pos_]) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default:
                    return fail("unsupported escape");
                }
            }
            out.string.push_back(c);
            ++pos_;
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing '"'
        return true;
    }

    bool
    parseBool(Value &out)
    {
        out.type = Value::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNull(Value &out)
    {
        out.type = Value::Type::Null;
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(Value &out)
    {
        out.type = Value::Type::Number;
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '-' || text_[end] == '+' ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E'))
            ++end;
        if (end == pos_)
            return fail("expected value");
        try {
            std::size_t consumed = 0;
            out.number = std::stod(text_.substr(pos_, end - pos_),
                                   &consumed);
            if (consumed != end - pos_)
                return fail("bad number");
        } catch (...) {
            return fail("bad number");
        }
        pos_ = end;
        return true;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &error)
{
    return Parser(text, error).parse(out);
}

bool
scalarToString(const Value &v, std::string &out)
{
    switch (v.type) {
      case Value::Type::String:
        out = v.string;
        return true;
      case Value::Type::Number:
        if (v.number ==
            static_cast<double>(static_cast<long long>(v.number)))
            out = strCat(static_cast<long long>(v.number));
        else
            out = strCat(v.number);
        return true;
      default:
        return false;
    }
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

void
Writer::indent()
{
    for (int i = 0; i < depth_; ++i)
        out_ += "  ";
}

void
Writer::comma()
{
    if (!needComma_.empty() && needComma_.back())
        out_ += ",";
    out_ += out_.empty() ? "" : "\n";
    indent();
    if (!needComma_.empty())
        needComma_.back() = true;
}

void
Writer::keyPrefix(const std::string &key)
{
    comma();
    if (!key.empty())
        out_ += quote(key) + ": ";
}

void
Writer::beginObject(const std::string &key)
{
    keyPrefix(key);
    out_ += "{";
    needComma_.push_back(false);
    ++depth_;
}

void
Writer::beginArray(const std::string &key)
{
    keyPrefix(key);
    out_ += "[";
    needComma_.push_back(false);
    ++depth_;
}

void
Writer::endObject()
{
    --depth_;
    const bool had = !needComma_.empty() && needComma_.back();
    needComma_.pop_back();
    if (had) {
        out_ += "\n";
        indent();
    }
    out_ += "}";
}

void
Writer::endArray()
{
    --depth_;
    const bool had = !needComma_.empty() && needComma_.back();
    needComma_.pop_back();
    if (had) {
        out_ += "\n";
        indent();
    }
    out_ += "]";
}

void
Writer::field(const std::string &key, const std::string &value)
{
    keyPrefix(key);
    out_ += quote(value);
}

void
Writer::field(const std::string &key, const char *value)
{
    field(key, std::string(value));
}

void
Writer::field(const std::string &key, double value)
{
    keyPrefix(key);
    out_ += strCat(value);
}

void
Writer::field(const std::string &key, std::uint64_t value)
{
    keyPrefix(key);
    out_ += strCat(value);
}

void
Writer::field(const std::string &key, unsigned value)
{
    field(key, static_cast<std::uint64_t>(value));
}

void
Writer::field(const std::string &key, bool value)
{
    keyPrefix(key);
    out_ += value ? "true" : "false";
}

} // namespace uqsim::json
