/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly;
 * warn() and inform() report conditions without stopping the run.
 */

#ifndef UQSIM_CORE_LOGGING_HH
#define UQSIM_CORE_LOGGING_HH

#include <sstream>
#include <string>

namespace uqsim {

/** Concatenate arbitrary streamable arguments into a std::string. */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Report an internal simulator bug and abort().
 * Call only for conditions that should be impossible regardless of
 * user input.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Call when the simulation cannot continue due to the user's fault
 * (bad configuration, invalid arguments), not a simulator bug.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious but non-fatal condition to stderr. */
void warn(const std::string &msg);

/** Report normal operating status to stderr. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace uqsim

#endif // UQSIM_CORE_LOGGING_HH
