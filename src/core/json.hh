/**
 * @file
 * Minimal dependency-free JSON reader/writer.
 *
 * Just enough JSON for configuration surfaces (fault schedules,
 * scenario files): objects, arrays, strings, numbers, booleans and
 * null. No escapes beyond \" \\ \/ \n \t. Originally embedded in the
 * fault-schedule parser; extracted here so every config surface
 * (--faults, --config) shares one parser.
 */

#ifndef UQSIM_CORE_JSON_HH
#define UQSIM_CORE_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace uqsim::json {

/** One parsed JSON value (a tagged union, tree-owned). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    /** Object member lookup; nullptr if absent (or not an object). */
    const Value *
    find(const std::string &key) const
    {
        for (const auto &kv : object)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }
    bool isBool() const { return type == Type::Bool; }
};

/**
 * Parse @p text into @p out. On failure @return false and set
 * @p error to a message naming the byte offset.
 */
bool parse(const std::string &text, Value &out, std::string &error);

/**
 * Render a scalar (string or number) back to a plain value string;
 * integers print without a trailing ".000000". @return false for
 * non-scalar values.
 */
bool scalarToString(const Value &v, std::string &out);

/** Quote and escape @p s as a JSON string literal. */
std::string quote(const std::string &s);

/**
 * Incremental writer for the tiny subset we emit: nested objects and
 * arrays with pretty two-space indentation. Keys are emitted in call
 * order, so output is deterministic.
 */
class Writer
{
  public:
    /** Begin an object ("{"); @p key names it inside a parent object. */
    void beginObject(const std::string &key = "");

    /** Begin an array ("["); @p key names it inside a parent object. */
    void beginArray(const std::string &key = "");

    void endObject();
    void endArray();

    /** Emit one scalar member (string form is quoted). */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, unsigned value);
    void field(const std::string &key, bool value);

    /** The accumulated document (call after the last end*()). */
    std::string str() const { return out_; }

  private:
    void indent();
    void comma();
    void keyPrefix(const std::string &key);

    std::string out_;
    std::vector<bool> needComma_;
    int depth_ = 0;
};

} // namespace uqsim::json

#endif // UQSIM_CORE_JSON_HH
