/**
 * @file
 * Plain-text table formatting for bench output.
 *
 * Every bench binary regenerating a paper table/figure prints its
 * rows through this helper so the output is uniform and easy to diff
 * against EXPERIMENTS.md.
 */

#ifndef UQSIM_CORE_TABLE_HH
#define UQSIM_CORE_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace uqsim {

/**
 * Column-aligned text table.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a pre-stringified row (must match header count). */
    void addRow(std::vector<std::string> cells);

    /** Append a row of arbitrary streamable values. */
    template <typename... Args>
    void
    add(Args &&...args)
    {
        std::vector<std::string> cells;
        (cells.push_back(toCell(std::forward<Args>(args))), ...);
        addRow(std::move(cells));
    }

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    template <typename T>
    static std::string
    toCell(T &&v)
    {
        std::ostringstream oss;
        oss << std::forward<T>(v);
        return oss.str();
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string fmtDouble(double v, int decimals = 2);

/** Format a tick count as milliseconds with 3 decimals, e.g. "1.234ms". */
std::string fmtMs(std::uint64_t ticks);

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace uqsim

#endif // UQSIM_CORE_TABLE_HH
