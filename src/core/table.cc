#include "core/table.hh"

#include <algorithm>
#include <iomanip>

#include "core/logging.hh"
#include "core/types.hh"

namespace uqsim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable with no columns");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic(strCat("TextTable row with ", cells.size(),
                     " cells; expected ", headers_.size()));
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emitRow(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
fmtDouble(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

std::string
fmtMs(std::uint64_t ticks)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(3) << ticksToMs(ticks) << "ms";
    return oss.str();
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace uqsim
