/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are closures scheduled at absolute ticks. Two events scheduled
 * for the same tick fire in scheduling order (FIFO), which keeps runs
 * deterministic. Events can be cancelled through the handle returned at
 * scheduling time; cancellation is O(1) and the entry is discarded
 * lazily when it reaches the head of the heap.
 */

#ifndef UQSIM_CORE_EVENT_QUEUE_HH
#define UQSIM_CORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace uqsim {

/** Callback type invoked when an event fires. */
using EventCallback = std::function<void()>;

/**
 * Handle to a scheduled event, allowing cancellation.
 *
 * Handles are cheap to copy; all copies refer to the same scheduled
 * event. A default-constructed handle refers to nothing.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the event if it has not fired yet. Idempotent. */
    void
    cancel()
    {
        if (state_ && !state_->cancelled && !state_->fired) {
            state_->cancelled = true;
            if (auto live = state_->liveCount.lock())
                --(*live);
        }
    }

    /** @return true if this handle refers to a scheduled event. */
    bool valid() const { return static_cast<bool>(state_); }

    /** @return true if the event was cancelled before firing. */
    bool isCancelled() const { return state_ && state_->cancelled; }

    /** @return true if the event already fired. */
    bool hasFired() const { return state_ && state_->fired; }

  private:
    friend class EventQueue;

    struct State
    {
        bool cancelled = false;
        bool fired = false;
        std::weak_ptr<std::uint64_t> liveCount;
    };

    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<State> state_;
};

/**
 * A min-heap of timed events with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to fire at absolute time @p when.
     * @return a handle that may be used to cancel the event.
     */
    EventHandle schedule(Tick when, EventCallback cb);

    /** @return true if no live (uncancelled) events remain. */
    bool empty() const { return *liveCount_ == 0; }

    /** @return number of live events currently queued. */
    std::size_t size() const { return *liveCount_; }

    /**
     * @return the firing time of the earliest live event.
     * @pre !empty()
     */
    Tick nextTick() const;

    /**
     * Pop the earliest live event *without* running it. The caller
     * (Simulator) advances its clock to the returned tick first and
     * then invokes the callback, so event handlers always observe the
     * correct current time.
     * @pre !empty()
     */
    std::pair<Tick, EventCallback> popNext();

    /** Total number of events ever executed (for stats/benchmarks). */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventCallback cb;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries from the head of the heap. */
    void purgeHead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    /** Shared so handles can decrement it on cancellation. */
    std::shared_ptr<std::uint64_t> liveCount_;
};

} // namespace uqsim

#endif // UQSIM_CORE_EVENT_QUEUE_HH
