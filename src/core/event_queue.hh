/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are closures scheduled at absolute ticks. Two events scheduled
 * for the same tick fire in scheduling order (FIFO), which keeps runs
 * deterministic. Events can be cancelled through the handle returned at
 * scheduling time; cancellation is O(1) and the entry is discarded
 * lazily when the queue next encounters it.
 *
 * Internally this is a ladder/calendar queue rather than a binary heap:
 * a ring of per-tick FIFO buckets covers the near future (O(1) schedule
 * and pop for the common short-delay case), and an overflow min-heap
 * holds events scheduled beyond the bucket window. Event nodes are
 * pooled through an intrusive free list, so steady-state scheduling
 * performs no allocation. The execution order is exactly the global
 * (tick, sequence-number) order the old heap implementation produced,
 * and a running FNV-1a digest over every executed (tick, seq) pair lets
 * two runs be proven identical (see executionDigest()).
 */

#ifndef UQSIM_CORE_EVENT_QUEUE_HH
#define UQSIM_CORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace uqsim {

/** Callback type invoked when an event fires. */
using EventCallback = std::function<void()>;

namespace detail {

/** Lifecycle of a pooled event node. */
enum class EventStatus : std::uint8_t
{
    Scheduled,  ///< linked in a bucket or the overflow heap
    Fired,      ///< popped and executed (or being executed)
    Cancelled,  ///< cancelled before firing; unlinked lazily
};

/**
 * One scheduled event. Nodes are pooled and linked intrusively: the
 * same `next` pointer threads a node through its tick bucket's FIFO
 * chain and, once retired, through the pool free list.
 */
struct EventNode
{
    Tick when = 0;
    std::uint64_t seq = 0;
    EventCallback cb;
    EventNode *next = nullptr;
    /** Number of live EventHandle copies referring to this node. */
    std::uint32_t handleRefs = 0;
    EventStatus status = EventStatus::Fired;
    /** Still linked in a bucket chain or the overflow heap. */
    bool inQueue = false;
};

/**
 * Chunked node pool shared between the queue and any outstanding
 * handles, so a handle may safely outlive its queue (mirroring the old
 * shared-state semantics) without a per-event heap allocation.
 */
struct EventPool
{
    static constexpr std::size_t kChunkNodes = 4096;

    std::vector<std::unique_ptr<EventNode[]>> chunks;
    EventNode *freeList = nullptr;
    /** Scheduled-and-not-cancelled events (shared so handles can
     *  decrement it on cancellation). */
    std::uint64_t liveCount = 0;

    /** Pop a node off the free list, growing the pool if needed. */
    EventNode *allocate();

    /** Return a retired, unreferenced node to the free list. */
    void release(EventNode *node);
};

} // namespace detail

/**
 * Handle to a scheduled event, allowing cancellation.
 *
 * Handles are cheap to copy; all copies refer to the same scheduled
 * event. A default-constructed handle refers to nothing. A node is
 * never recycled while a handle still refers to it, so status queries
 * stay accurate for as long as the handle is held.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    EventHandle(const EventHandle &other)
        : pool_(other.pool_), node_(other.node_)
    {
        if (node_)
            ++node_->handleRefs;
    }

    EventHandle(EventHandle &&other) noexcept
        : pool_(std::move(other.pool_)), node_(other.node_)
    {
        other.node_ = nullptr;
    }

    /** Unified copy/move assignment (copy-and-swap). */
    EventHandle &
    operator=(EventHandle other) noexcept
    {
        std::swap(pool_, other.pool_);
        std::swap(node_, other.node_);
        return *this;
    }

    ~EventHandle() { reset(); }

    /** Cancel the event if it has not fired yet. Idempotent. */
    void
    cancel()
    {
        if (node_ && node_->status == detail::EventStatus::Scheduled) {
            node_->status = detail::EventStatus::Cancelled;
            --pool_->liveCount;
        }
    }

    /** @return true if this handle refers to a scheduled event. */
    bool valid() const { return node_ != nullptr; }

    /** @return true if the event was cancelled before firing. */
    bool
    isCancelled() const
    {
        return node_ && node_->status == detail::EventStatus::Cancelled;
    }

    /** @return true if the event already fired. */
    bool
    hasFired() const
    {
        return node_ && node_->status == detail::EventStatus::Fired;
    }

  private:
    friend class EventQueue;

    /** Adopts one reference already counted in node->handleRefs. */
    EventHandle(std::shared_ptr<detail::EventPool> pool,
                detail::EventNode *node)
        : pool_(std::move(pool)), node_(node)
    {}

    void
    reset()
    {
        if (!node_)
            return;
        if (--node_->handleRefs == 0 && !node_->inQueue &&
            node_->status != detail::EventStatus::Scheduled) {
            pool_->release(node_);
        }
        node_ = nullptr;
        pool_.reset();
    }

    std::shared_ptr<detail::EventPool> pool_;
    detail::EventNode *node_ = nullptr;
};

/**
 * Ladder/calendar queue of timed events with deterministic same-tick
 * FIFO ordering (globally: ascending (tick, sequence) order).
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to fire at absolute time @p when.
     * @return a handle that may be used to cancel the event.
     */
    EventHandle schedule(Tick when, EventCallback cb);

    /** @return true if no live (uncancelled) events remain. */
    bool empty() const { return pool_->liveCount == 0; }

    /** @return number of live events currently queued. */
    std::size_t size() const { return pool_->liveCount; }

    /**
     * @return the firing time of the earliest live event.
     * @pre !empty()
     */
    Tick nextTick() const;

    /**
     * Pop the earliest live event *without* running it. The caller
     * (Simulator) advances its clock to the returned tick first and
     * then invokes the callback, so event handlers always observe the
     * correct current time.
     * @pre !empty()
     */
    std::pair<Tick, EventCallback> popNext();

    /** Total number of events ever executed (for stats/benchmarks). */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Running FNV-1a hash over the (tick, sequence) of every executed
     * event. Two runs with identical scheduling decisions — i.e. the
     * same seed — produce identical digests, so this is a cheap,
     * order-sensitive proof of determinism.
     */
    std::uint64_t executionDigest() const { return digest_; }

  private:
    /** Near-future window: 2^14 one-tick buckets (~16us of sim time). */
    static constexpr unsigned kBucketBits = 14;
    static constexpr std::size_t kBuckets = std::size_t(1) << kBucketBits;
    static constexpr std::size_t kBucketMask = kBuckets - 1;
    static constexpr std::size_t kWords = kBuckets / 64;
    static constexpr std::size_t kInvalidBucket = ~std::size_t(0);

    /** FIFO chain of events sharing one firing tick. */
    struct Bucket
    {
        detail::EventNode *head = nullptr;
        detail::EventNode *tail = nullptr;
    };

    /**
     * Overflow-heap entry with the ordering key inline, so sift
     * compares never dereference cold pool nodes.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        detail::EventNode *node;
    };

    /** Heap order: earliest (tick, seq) at the top. */
    struct HeapLater
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void markOccupied(std::size_t bucket) const;
    void clearOccupied(std::size_t bucket) const;

    /**
     * Ring-forward scan for the next non-empty occupancy word after
     * @p word (possibly @p word itself again after a full wrap).
     * @return word index, or kInvalidBucket if none.
     */
    std::size_t nextOccupiedWord(std::size_t word) const;

    /**
     * Find the bucket holding the earliest live bucketed event,
     * purging cancelled nodes encountered on the way.
     * @return bucket index, or kInvalidBucket if no live bucketed event.
     */
    std::size_t firstLiveBucket() const;

    /** Drop cancelled entries from the top of the overflow heap. */
    void purgeHeapTop() const;

    /** Unlink a retired node; recycle it if no handles remain. */
    void retire(detail::EventNode *node) const;

    /**
     * Select the earliest live event across buckets and heap.
     * @return the node, or nullptr if none; *fromBucket tells where.
     */
    detail::EventNode *peekNext(std::size_t *bucketIndex) const;

    std::shared_ptr<detail::EventPool> pool_;

    /** Ring of per-tick buckets covering [cursor_, cursor_+kBuckets). */
    mutable std::vector<Bucket> buckets_;
    /** Occupancy bitmap: bit b set iff buckets_[b] is non-empty. */
    mutable std::vector<std::uint64_t> occWords_;
    /** Summary bitmap: bit w set iff occWords_[w] != 0. */
    mutable std::vector<std::uint64_t> sumWords_;
    /** Nodes (live or cancelled) currently linked in buckets. */
    mutable std::size_t bucketNodes_ = 0;

    /** Overflow heap for events beyond the bucket window. */
    mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                HeapLater>
        heap_;

    /** Max tick popped so far; lower bound for all live events. */
    Tick cursor_ = 0;

    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t digest_ = 14695981039346656037ull; // FNV-1a offset
};

} // namespace uqsim

#endif // UQSIM_CORE_EVENT_QUEUE_HH
