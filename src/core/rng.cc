#include "core/rng.hh"

#include <cmath>

#include "core/logging.hh"

namespace uqsim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform01()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt(0)");
    // Debiased modulo via rejection.
    const std::uint64_t threshold = (~n + 1) % n; // (2^64 - n) mod n
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform01();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    double u1;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::boundedPareto(double alpha, double lo, double hi)
{
    if (lo <= 0.0 || hi <= lo || alpha <= 0.0)
        panic("Rng::boundedPareto: invalid parameters");
    const double u = uniform01();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(1.0 / x, 1.0 / alpha);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace uqsim
