#include "core/parallel.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim {

namespace {

/** a + b clamped to kMaxTick (lookahead may be "infinite"). */
Tick
satAdd(Tick a, Tick b)
{
    return a > kMaxTick - b ? kMaxTick : a + b;
}

/** Finalization mix (splitmix64) for composing shard digests. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

ParallelSimulator::ParallelSimulator(Config config)
    : lookahead_(config.lookahead)
{
    if (config.shards == 0)
        panic("ParallelSimulator with zero shards");
    if (config.lookahead == 0)
        panic("ParallelSimulator with zero lookahead (cross-shard "
              "events would never be safe to buffer)");
    shards_.reserve(config.shards);
    mail_.reserve(config.shards);
    for (unsigned i = 0; i < config.shards; ++i) {
        shards_.push_back(std::make_unique<Shard>());
        mail_.push_back(std::make_unique<Mailbox>());
    }
    nthreads_ = std::max(1u, std::min(config.threads, config.shards));
    if (nthreads_ > 1) {
        workers_.reserve(nthreads_);
        for (unsigned i = 0; i < nthreads_; ++i)
            workers_.emplace_back([this, i]() { workerLoop(i); });
    }
}

ParallelSimulator::~ParallelSimulator()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cvStart_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

SimContext
ParallelSimulator::context(unsigned shard)
{
    if (shard >= shards_.size())
        panic(strCat("context(", shard, ") out of range; ",
                     shards_.size(), " shards"));
    Shard &s = *shards_[shard];
    return SimContext(s.queue, s.now, shard, *this);
}

Tick
ParallelSimulator::now(unsigned shard) const
{
    if (shard >= shards_.size())
        panic(strCat("now(", shard, ") out of range"));
    return shards_[shard]->now;
}

void
ParallelSimulator::postToShard(unsigned src, unsigned dst, Tick when,
                               EventCallback cb)
{
    if (dst >= shards_.size())
        panic(strCat("postToShard(", dst, ") out of range; ",
                     shards_.size(), " shards"));
    Shard &from = *shards_[src];
    if (dst == src) {
        // Same-shard fast path: an ordinary local event.
        from.queue.schedule(when, std::move(cb));
        return;
    }
    // The conservative contract: anything crossing a shard boundary
    // must land at least `lookahead` after the sender's clock,
    // otherwise the window [minNext, minNext+lookahead) already being
    // executed elsewhere could contain the delivery time.
    if (when < satAdd(from.now, lookahead_))
        panic(strCat("cross-shard event from shard ", src, " (now=",
                     from.now, ") to shard ", dst, " at when=", when,
                     " violates lookahead ", lookahead_));
    Mailbox &box = *mail_[dst];
    std::lock_guard<std::mutex> lock(box.mu);
    box.msgs.push_back(Mail{when, src, from.mailSeq++, std::move(cb)});
    box.maybeNonEmpty = true;
}

void
ParallelSimulator::deliverMail()
{
    for (unsigned dst = 0; dst < shards_.size(); ++dst) {
        Mailbox &box = *mail_[dst];
        if (!box.maybeNonEmpty)
            continue;
        std::vector<Mail> msgs;
        {
            std::lock_guard<std::mutex> lock(box.mu);
            msgs.swap(box.msgs);
            box.maybeNonEmpty = false;
        }
        // (when, src, seq) is a total order: seq is unique per source.
        // Sorting makes the merge independent of the interleaving in
        // which worker threads appended to the mailbox.
        std::sort(msgs.begin(), msgs.end(),
                  [](const Mail &a, const Mail &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        Shard &s = *shards_[dst];
        for (Mail &m : msgs) {
            if (m.when < s.now)
                panic(strCat("mailbox delivery at when=", m.when,
                             " behind shard ", dst, " clock now=",
                             s.now, " (lookahead too small?)"));
            s.queue.schedule(m.when, std::move(m.cb));
        }
    }
}

Tick
ParallelSimulator::minNextTick() const
{
    Tick min_next = kMaxTick;
    for (const auto &s : shards_)
        if (!s->queue.empty())
            min_next = std::min(min_next, s->queue.nextTick());
    return min_next;
}

void
ParallelSimulator::addClockObserver(unsigned shard, Tick interval,
                                    ClockObserverFn fn)
{
    if (shard >= shards_.size())
        panic(strCat("addClockObserver(", shard, ") out of range; ",
                     shards_.size(), " shards"));
    if (interval == 0)
        panic("addClockObserver with zero interval");
    Shard &s = *shards_[shard];
    Tick first = interval;
    while (first <= s.now)
        first += interval;
    s.observers.push_back(ClockObserver{interval, first, std::move(fn)});
    s.nextBoundary = std::min(s.nextBoundary, first);
}

void
ParallelSimulator::runShard(Shard &s, Tick horizon)
{
    EventQueue &q = s.queue;
    if (s.observers.empty()) {
        // Observer-free fast path: no per-event boundary check.
        while (!q.empty() && q.nextTick() < horizon) {
            auto [when, cb] = q.popNext();
            s.now = when;
            cb();
        }
        return;
    }
    while (!q.empty() && q.nextTick() < horizon) {
        // Boundaries <= the next local event time are due. Nothing
        // below the horizon can still arrive by mail (the lookahead
        // contract), so all events < boundary have already executed —
        // the lazily-fired sample equals an eagerly-fired one. The
        // cached earliest boundary keeps the idle cost at one compare.
        if (q.nextTick() >= s.nextBoundary) {
            fireClockObservers(s.observers, q.nextTick());
            s.nextBoundary = nextClockBoundary(s.observers);
        }
        auto [when, cb] = q.popNext();
        s.now = when;
        cb();
    }
}

void
ParallelSimulator::runRound(Tick horizon)
{
    if (nthreads_ <= 1) {
        for (auto &s : shards_)
            runShard(*s, horizon);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        roundHorizon_ = horizon;
        pendingWorkers_ = nthreads_;
        ++generation_;
    }
    cvStart_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cvDone_.wait(lock, [this]() { return pendingWorkers_ == 0; });
}

void
ParallelSimulator::workerLoop(unsigned index)
{
    std::uint64_t seen = 0;
    while (true) {
        Tick horizon;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cvStart_.wait(lock, [this, seen]() {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            horizon = roundHorizon_;
        }
        // Static shard-to-worker assignment: shard s runs on worker
        // s % nthreads_, every round, so per-shard execution is
        // sequential across rounds as well as within one.
        for (unsigned s = index; s < shards_.size(); s += nthreads_)
            runShard(*shards_[s], horizon);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pendingWorkers_ == 0)
                cvDone_.notify_all();
        }
    }
}

void
ParallelSimulator::runUntil(Tick deadline)
{
    for (const auto &s : shards_)
        if (deadline < s->now)
            panic(strCat("runUntil(", deadline, ") in the past; shard "
                         "clock now=", s->now));
    while (true) {
        deliverMail();
        const Tick min_next = minNextTick();
        if (min_next > deadline)
            break;
        // Events fire while strictly below the horizon, so the
        // inclusive deadline needs horizon = deadline + 1; satAdd
        // keeps both that and an "infinite" lookahead from wrapping.
        const Tick horizon = std::min(satAdd(deadline, 1),
                                      satAdd(min_next, lookahead_));
        runRound(horizon);
    }
    for (auto &s : shards_) {
        s->now = deadline;
        // The window is fully executed on every shard: flush each
        // shard's boundaries it covers (driver thread, deterministic).
        if (deadline >= s->nextBoundary) {
            fireClockObservers(s->observers, deadline);
            s->nextBoundary = nextClockBoundary(s->observers);
        }
    }
}

void
ParallelSimulator::run()
{
    while (true) {
        deliverMail();
        const Tick min_next = minNextTick();
        if (min_next == kMaxTick)
            break;
        runRound(satAdd(min_next, lookahead_));
    }
}

void
ParallelSimulator::runFor(Tick duration)
{
    Tick start = 0;
    for (const auto &s : shards_)
        start = std::max(start, s->now);
    runUntil(satAdd(start, duration));
}

std::uint64_t
ParallelSimulator::eventsExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_)
        total += s->queue.executedCount();
    return total;
}

std::uint64_t
ParallelSimulator::shardDigest(unsigned shard) const
{
    if (shard >= shards_.size())
        panic(strCat("shardDigest(", shard, ") out of range"));
    return shards_[shard]->queue.executionDigest();
}

std::uint64_t
ParallelSimulator::executionDigest() const
{
    // One shard must stay bit-identical to the Simulator digest so a
    // sharded world with --shards 1 proves the whole refactor inert.
    if (shards_.size() == 1)
        return shards_[0]->queue.executionDigest();
    // Commutative composition (wrapping sum of a per-shard mix): the
    // result does not depend on any cross-shard ordering, only on each
    // shard's own order-sensitive digest. The shard id is folded in so
    // two identical shards do not cancel.
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < shards_.size(); ++i)
        acc += mix64(shards_[i]->queue.executionDigest() ^
                     (0x9e3779b97f4a7c15ull * (i + 1)));
    return acc;
}

// -- SimContext methods needing the engine definition -------------------

void
SimContext::postToShard(unsigned dst, Tick delay, EventCallback cb)
{
    const Tick when = satAdd(now(), delay);
    if (!engine_) {
        if (dst != 0)
            panic(strCat("postToShard(", dst, ") in a single-shard "
                         "world"));
        queue_->schedule(when, std::move(cb));
        return;
    }
    engine_->postToShard(shard_, dst, when, std::move(cb));
}

void
SimContext::addClockObserver(Tick interval, ClockObserverFn fn)
{
    if (engine_)
        engine_->addClockObserver(shard_, interval, std::move(fn));
    else
        sim_->addClockObserver(interval, std::move(fn));
}

unsigned
SimContext::shardCount() const
{
    return engine_ ? engine_->shardCount() : 1;
}

Tick
SimContext::lookahead() const
{
    return engine_ ? engine_->lookahead() : kMaxTick;
}

void
SimContext::run()
{
    if (engine_)
        engine_->run();
    else
        sim_->run();
}

void
SimContext::runUntil(Tick deadline)
{
    if (engine_)
        engine_->runUntil(deadline);
    else
        sim_->runUntil(deadline);
}

void
SimContext::pastScheduleError(Tick when) const
{
    const Tick now_tick = *now_;
    panic(strCat("scheduleAt(when=", when, ") is ", now_tick - when,
                 " ticks in the past (now=", now_tick, ", shard ",
                 shard_, ")"));
}

} // namespace uqsim
