#include "core/metrics.hh"

#include <iomanip>
#include <locale>
#include <sstream>

namespace uqsim {

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return counters_.count(name) || gauges_.count(name) ||
           histograms_.count(name);
}

void
MetricsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " = " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        os << name << " = " << g->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ": n=" << h->count() << " mean=" << std::fixed
           << std::setprecision(1) << h->mean() << " p50=" << h->p50()
           << " p99=" << h->p99() << " max=" << h->max() << "\n";
    }
}

namespace {

/**
 * Full JSON string escaping for metric names: quote, backslash, the
 * short escapes, and \u00XX for the remaining control characters. A
 * name containing a newline or tab must not corrupt the document.
 */
void
emitJsonString(std::ostream &os, const std::string &s)
{
    static const char *hex = "0123456789abcdef";
    os << '"';
    for (char ch : s) {
        const auto c = static_cast<unsigned char>(ch);
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\b': os << "\\b"; break;
        case '\f': os << "\\f"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (c < 0x20)
                os << "\\u00" << hex[c >> 4] << hex[c & 0xf];
            else
                os << ch;
        }
    }
    os << '"';
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        emitJsonString(os, name);
        os << ":" << c->value();
    }
    os << "},\n \"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        emitJsonString(os, name);
        os << ":" << g->value();
    }
    os << "},\n \"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
        emitJsonString(os, name);
        os << ":{\"count\":" << h->count() << ",\"mean\":" << h->mean()
           << ",\"p50\":" << h->p50() << ",\"p99\":" << h->p99()
           << ",\"max\":" << h->max() << "}";
    }
    os << "}}\n";
}

std::string
MetricsRegistry::snapshotJson() const
{
    // A fresh stream carries no inherited precision/locale state, so
    // the bytes depend only on registry contents (the maps are sorted
    // by construction).
    std::ostringstream os;
    os.imbue(std::locale::classic());
    writeJson(os);
    return os.str();
}

void
MetricsRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->set(0.0);
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace uqsim
