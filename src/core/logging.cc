#include "core/logging.hh"

#include <cstdlib>
#include <iostream>

namespace uqsim {

namespace {
bool informEnabled = true;
} // namespace

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
inform(const std::string &msg)
{
    if (informEnabled)
        std::cerr << "info: " << msg << std::endl;
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace uqsim
