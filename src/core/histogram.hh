/**
 * @file
 * Log-bucketed latency histogram with percentile queries.
 *
 * The bucketing scheme follows HdrHistogram: values are grouped into
 * power-of-two ranges, each subdivided into 2^subBucketBits linear
 * sub-buckets, giving a bounded relative error (~1.6% for 6 bits)
 * across the full 64-bit range with a few KB of memory. This is what
 * every tail-latency statistic in uqsim is built on.
 */

#ifndef UQSIM_CORE_HISTOGRAM_HH
#define UQSIM_CORE_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace uqsim {

/**
 * Fixed-precision histogram of non-negative 64-bit values.
 */
class Histogram
{
  public:
    /** @param sub_bucket_bits linear resolution within each octave. */
    explicit Histogram(unsigned sub_bucket_bits = 6);

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Record @p count identical samples. */
    void record(std::uint64_t value, std::uint64_t count);

    /** Total number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Smallest recorded value (0 if empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /** Largest recorded value (0 if empty). */
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /** Arithmetic mean of recorded samples (0 if empty). */
    double mean() const;

    /**
     * Value at percentile @p p in [0, 100]. Returns an upper bound of
     * the bucket containing the requested rank (0 if empty).
     */
    std::uint64_t percentile(double p) const;

    /** Shorthand for common tail percentiles. */
    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p95() const { return percentile(95.0); }
    std::uint64_t p99() const { return percentile(99.0); }

    /** Merge another histogram (same resolution) into this one. */
    void merge(const Histogram &other);

    /** Forget all samples. */
    void reset();

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketUpperBound(std::size_t index) const;

    unsigned subBucketBits_;
    std::uint64_t subBucketCount_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace uqsim

#endif // UQSIM_CORE_HISTOGRAM_HH
