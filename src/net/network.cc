#include "net/network.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace uqsim::net {

Network::Network(SimContext ctx, NetworkConfig config, Rng rng)
    : ctx_(ctx), config_(config), rng_(rng)
{
    if (config_.linkGbps <= 0.0 || config_.wirelessGbps <= 0.0)
        fatal("Network with non-positive link bandwidth");
}

void
Network::attachWireless(unsigned server_id)
{
    wireless_[server_id] = true;
}

bool
Network::isWireless(unsigned server_id) const
{
    auto it = wireless_.find(server_id);
    return it != wireless_.end() && it->second;
}

Tick
Network::serializationDelay(Bytes size, double gbps)
{
    // gbps == bits per nanosecond.
    const double ns = static_cast<double>(size) * 8.0 / gbps;
    return std::max<Tick>(1, static_cast<Tick>(ns));
}

Tick
Network::propagation(unsigned src, unsigned dst)
{
    const bool wireless = isWireless(src) || isWireless(dst);
    if (!wireless)
        return config_.wireLatency;
    // Wireless latency is jittery: log-normal multiplier around 1.
    const double jitter =
        rng_.lognormal(0.0, config_.wirelessJitterSigma);
    Tick lat = static_cast<Tick>(
        static_cast<double>(config_.wirelessLatency) * jitter);
    // Drone-to-drone traffic crosses the router twice.
    if (isWireless(src) && isWireless(dst))
        lat *= 2;
    return lat;
}

Network::TxQueue &
Network::txQueue(unsigned server_id)
{
    return txQueues_[server_id];
}

std::pair<Tick, Tick>
Network::crossShardDelay(unsigned src, Bytes size)
{
    const Tick now = ctx_.now();
    TxQueue &tx = txQueue(src);
    const Tick tx_start = std::max(now, tx.busyUntil);
    tx.busyUntil = tx_start + serializationDelay(size, config_.linkGbps);
    ++messages_;
    bytes_ += size;
    return {tx.busyUntil - now, config_.wireLatency};
}

void
Network::send(unsigned src, unsigned dst, Bytes size, DeliverFn deliver)
{
    const Tick now = ctx_.now();

    if (src == dst) {
        if (dropHook_ && dropHook_(src, dst)) {
            ++dropped_;
            return;
        }
        const Tick delay = config_.loopbackLatency;
        ctx_.schedule(delay, [this, size, delay,
                              deliver = std::move(deliver)]() {
            ++messages_;
            bytes_ += size;
            deliver(0, delay);
        });
        return;
    }

    const double gbps = (isWireless(src) || isWireless(dst))
                            ? config_.wirelessGbps
                            : config_.linkGbps;

    TxQueue &tx = txQueue(src);
    const Tick tx_start = std::max(now, tx.busyUntil);
    const Tick ser = serializationDelay(size, gbps);
    tx.busyUntil = tx_start + ser;

    // Drop *after* the tx accounting: the sender still paid the NIC
    // serialization; the message dies in the fabric, not at the source.
    if (dropHook_ && dropHook_(src, dst)) {
        ++dropped_;
        return;
    }

    const Tick prop = propagation(src, dst);
    const Tick delivery = tx.busyUntil + prop;
    const Tick queueing_tx = tx.busyUntil - now;

    ctx_.scheduleAt(delivery, [this, size, queueing_tx, prop,
                               deliver = std::move(deliver)]() {
        ++messages_;
        bytes_ += size;
        deliver(queueing_tx, prop);
    });
}

} // namespace uqsim::net
