/**
 * @file
 * Datacenter/edge network fabric model.
 *
 * Topology is the paper's: every server hangs off a top-of-rack switch
 * with a 10GbE NIC. Each server has a transmit queue modelled as a
 * busy-cursor link: serialization delay is bytes/bandwidth and messages
 * queue behind each other, so "long queues build up in the NICs" at
 * high load (Sec 5) emerges naturally. Edge devices (drones) attach
 * over a high-latency, low-bandwidth wireless link instead.
 *
 * Kernel TCP processing cost is *not* part of this module's delay: it
 * is CPU work, charged to the sending/receiving server by the RPC
 * layer using the cost models defined here (TcpCostModel), or bypassed
 * by the FPGA offload (FpgaOffloadModel, Fig 16).
 */

#ifndef UQSIM_NET_NETWORK_HH
#define UQSIM_NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/distributions.hh"
#include "core/rng.hh"
#include "core/sim_context.hh"
#include "core/types.hh"

namespace uqsim::net {

/**
 * Cycle cost of kernel TCP/IP processing per message, charged to the
 * host CPU by the RPC layer. Derived from the paper's observation that
 * network processing reaches ~36% of execution time for microservices.
 */
struct TcpCostModel
{
    /** Per-message send-side cycles (syscall, segmentation, stack). */
    Cycles sendBaseCycles = 5000;

    /** Per-message receive-side cycles (interrupt, reassembly, wakeup). */
    Cycles recvBaseCycles = 6500;

    /** Copy/checksum cycles per payload byte (TSO/GSO-assisted). */
    double perByteCycles = 0.08;

    /** Total send-side cycles for a message of @p size bytes. */
    Cycles
    sendCost(Bytes size) const
    {
        return sendBaseCycles +
               static_cast<Cycles>(perByteCycles * static_cast<double>(size));
    }

    /** Total receive-side cycles for a message of @p size bytes. */
    Cycles
    recvCost(Bytes size) const
    {
        return recvBaseCycles +
               static_cast<Cycles>(perByteCycles * static_cast<double>(size));
    }

    /** Linux kernel stack defaults. */
    static TcpCostModel native() { return TcpCostModel{}; }
};

/**
 * Bump-in-the-wire FPGA TCP offload (Fig 16): the Virtex-7 sits between
 * the NIC and the ToR and terminates TCP, leaving the host only a
 * doorbell/DMA interaction.
 */
struct FpgaOffloadModel
{
    /** Whether the offload path is active. */
    bool enabled = false;

    /** Residual host cycles per message (DMA descriptor + doorbell). */
    Cycles hostSendCycles = 150;
    Cycles hostRecvCycles = 150;

    /** FPGA pipeline latency added per direction (bump-in-the-wire). */
    Tick pipelineLatency = 300; // 300ns

    /** Disabled (native kernel TCP). */
    static FpgaOffloadModel off() { return FpgaOffloadModel{}; }

    /** Enabled with the defaults above. */
    static FpgaOffloadModel
    on()
    {
        FpgaOffloadModel m;
        m.enabled = true;
        return m;
    }
};

/** Static configuration of the fabric. */
struct NetworkConfig
{
    /** One-way wire + ToR switch latency between servers. */
    Tick wireLatency = 10 * kTicksPerUs;

    /** Loopback (same-server, inter-container IPC) latency. */
    Tick loopbackLatency = 5 * kTicksPerUs;

    /** NIC line rate in Gbit/s. */
    double linkGbps = 10.0;

    /**
     * Default wireless latency for edge devices (one way): the drones
     * talk to the router over tens of meters with contention, so
     * latencies are far above datacenter wires (Sec 3.8, Fig 9).
     */
    Tick wirelessLatency = 35 * kTicksPerMs;

    /** Wireless latency jitter: multiplier sampled per message. */
    double wirelessJitterSigma = 0.40;

    /** Wireless bandwidth in Gbit/s (802.11n-class). */
    double wirelessGbps = 0.05;
};

/**
 * Delivery callback: receives the in-network delay split into
 * (a) NIC queueing + serialization - which the paper counts as network
 * *processing* time (queues building in the NICs at high load) - and
 * (b) pure wire/switch propagation, which is latency but not work.
 */
using DeliverFn = std::function<void(Tick queueing_tx, Tick propagation)>;

/**
 * The fabric connecting all servers.
 */
class Network
{
  public:
    Network(SimContext ctx, NetworkConfig config, Rng rng);

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    const NetworkConfig &config() const { return config_; }

    /**
     * Mark @p server_id as an edge device reached over the wireless
     * link instead of the ToR.
     */
    void attachWireless(unsigned server_id);

    /** @return true if the server is attached over wireless. */
    bool isWireless(unsigned server_id) const;

    /**
     * Send @p size payload bytes from @p src to @p dst; @p deliver
     * fires at the destination when the last byte lands.
     */
    void send(unsigned src, unsigned dst, Bytes size, DeliverFn deliver);

    /**
     * Account for one leg of a cross-shard message in a partitioned
     * world: the sender's NIC pays the usual serialization/queueing
     * time, the wire pays `wireLatency`. Returns (queueing_tx,
     * propagation); the caller schedules delivery on the peer shard
     * via `SimContext::postToShard` with their sum as the delay.
     *
     * Unlike send() this never takes the loopback path: the same
     * server id on two shards names two different physical machines,
     * which is also why the engine's conservative lookahead can be
     * exactly `wireLatency`. The drop hook is not consulted (fault
     * schedules are rejected in partition mode), and the message is
     * counted at send time because the receiving shard must not
     * mutate this shard's counters.
     */
    std::pair<Tick, Tick> crossShardDelay(unsigned src, Bytes size);

    /**
     * Fault-injection drop hook, consulted per message *after* the
     * sender's NIC has spent the serialization time (the packet leaves
     * the host and dies in the fabric). Returning true swallows the
     * message: the delivery callback never fires, so recovery is
     * entirely up to the endpoint's timeout/retry machinery. Null (the
     * default) means a perfectly reliable fabric.
     */
    void setDropHook(std::function<bool(unsigned src, unsigned dst)> hook)
    {
        dropHook_ = std::move(hook);
    }

    /** Messages delivered so far. */
    std::uint64_t messagesDelivered() const { return messages_; }

    /** Payload bytes delivered so far. */
    Bytes bytesDelivered() const { return bytes_; }

    /** Messages swallowed by the drop hook (partitions, packet loss). */
    std::uint64_t messagesDropped() const { return dropped_; }

  private:
    struct TxQueue
    {
        Tick busyUntil = 0;
    };

    /** Serialization time of @p size bytes at @p gbps. */
    static Tick serializationDelay(Bytes size, double gbps);

    /** Propagation (and jitter) between two endpoints. */
    Tick propagation(unsigned src, unsigned dst);

    TxQueue &txQueue(unsigned server_id);

    SimContext ctx_;
    NetworkConfig config_;
    Rng rng_;
    std::unordered_map<unsigned, TxQueue> txQueues_;
    std::unordered_map<unsigned, bool> wireless_;
    std::function<bool(unsigned, unsigned)> dropHook_;
    std::uint64_t messages_ = 0;
    Bytes bytes_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace uqsim::net

#endif // UQSIM_NET_NETWORK_HH
