/**
 * @file
 * Handler programs: what a microservice does per request.
 *
 * Each microservice's behaviour is a small stage program interpreted
 * by the App runtime: local compute, synchronous downstream calls
 * (sequential or parallel fan-out), and cache-with-database-fallback
 * accesses. This is the reconfigurability hook of the suite: swapping
 * a microservice for an alternate version means swapping its handler
 * and profile, nothing else.
 */

#ifndef UQSIM_SERVICE_HANDLER_HH
#define UQSIM_SERVICE_HANDLER_HH

#include <string>
#include <vector>

#include "core/distributions.hh"
#include "core/types.hh"

namespace uqsim::service {

/**
 * One step of a handler program.
 */
struct Stage
{
    enum class Kind
    {
        Compute,  ///< burn CPU cycles (plus profile-driven I/O wait)
        Call,     ///< synchronous downstream RPC(s)
        Cache,    ///< cache RPC, database RPC on miss
        Delay,    ///< pure latency without CPU (external waits, dispatch)
    };

    Kind kind = Kind::Compute;

    // -- Compute --------------------------------------------------------
    /** Work in core cycles (sampled per request). */
    Dist computeCycles;

    // -- Delay ----------------------------------------------------------
    /** Wall-clock delay in nanoseconds (sampled per request). */
    Dist delayNs;

    /** Attribute the delay to network processing instead of compute. */
    bool delayIsNetwork = false;

    // -- Call / Cache ----------------------------------------------------
    /** Callee service name (the cache tier for Kind::Cache). */
    std::string target;

    /** Database tier called on a cache miss (Kind::Cache only). */
    std::string dbTarget;

    /** Cache hit probability (Kind::Cache only, legacy mode). */
    double hitRatio = 0.95;

    /**
     * Keyed mode (Kind::Cache only): sample a key from the app's
     * Keyspace and let hit/miss *emerge* from the target tier's
     * CacheModel state instead of the hitRatio coin flip. Flipped by
     * App::enableKeyedData(); while false (the default) the legacy
     * path runs bit-for-bit unchanged.
     */
    bool keyed = false;

    /** Number of calls issued by this stage (Kind::Call). */
    unsigned fanout = 1;

    /** Issue the fan-out concurrently instead of back-to-back. */
    bool parallel = false;

    /** Request/response payload bytes (0 = use callee defaults). */
    Bytes requestBytes = 0;
    Bytes responseBytes = 0;

    /**
     * Whether this call forwards the query's media payload
     * (QueryType::extraPayloadBytes). Media travels only on the path
     * that actually stores/serves it, not on every RPC of the fanout.
     */
    bool carriesMedia = false;

    /** Execute the stage only with this probability. */
    double probability = 1.0;

    /** If non-empty, run only for query types carrying this tag. */
    std::string onlyForTag;
};

/**
 * An ordered stage program with a fluent builder interface.
 */
struct HandlerSpec
{
    std::vector<Stage> stages;

    /** Append a compute stage. */
    HandlerSpec &compute(Dist cycles);

    /** Append a compute stage gated on a query tag. */
    HandlerSpec &computeTagged(const std::string &tag, Dist cycles);

    /** Append a sequential call stage. */
    HandlerSpec &call(const std::string &target, unsigned fanout = 1);

    /** Append a sequential call stage that forwards media payloads. */
    HandlerSpec &callWithMedia(const std::string &target);

    /** Append a tag-gated call stage that forwards media payloads. */
    HandlerSpec &callTaggedWithMedia(const std::string &tag,
                                     const std::string &target);

    /** Append a probabilistic sequential call stage. */
    HandlerSpec &callWithProbability(const std::string &target, double p);

    /** Append a call stage gated on a query tag. */
    HandlerSpec &callTagged(const std::string &tag,
                            const std::string &target,
                            unsigned fanout = 1);

    /** Append a parallel fan-out call stage. */
    HandlerSpec &parallelCall(const std::string &target, unsigned fanout);

    /** Append a cache-then-database access stage. */
    HandlerSpec &cache(const std::string &cache_tier,
                       const std::string &db_tier, double hit_ratio);

    /** Append a pure wall-clock delay (no CPU consumed). */
    HandlerSpec &delay(Dist delay_ns, bool is_network = false);

    /** Append a fully custom stage. */
    HandlerSpec &add(Stage stage);

    /** All downstream service names referenced by this handler. */
    std::vector<std::string> callTargets() const;
};

} // namespace uqsim::service

#endif // UQSIM_SERVICE_HANDLER_HH
