/**
 * @file
 * End-to-end request state shared across all RPC hops of one user
 * request.
 */

#ifndef UQSIM_SERVICE_REQUEST_HH
#define UQSIM_SERVICE_REQUEST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hh"
#include "service/admission.hh"
#include "trace/span.hh"

namespace uqsim::service {

/**
 * One end-to-end user request flowing through a service graph.
 *
 * The request object travels (by shared pointer) through every hop and
 * accumulates the global accounting the experiments need: total time
 * attributable to network processing vs application compute, and
 * cycles by execution mode.
 */
struct Request
{
    /** Monotonic request id within the App. */
    std::uint64_t id = 0;

    /** Index into the App's query-type table. */
    unsigned queryType = 0;

    /** Originating user (drives skew and shard selection). */
    std::uint64_t userId = 0;

    /** Injection time at the client. */
    Tick injectTime = 0;

    /** Completion time at the client (0 while in flight). */
    Tick completeTime = 0;

    /** True if any tier dropped the request (queue overflow / limits). */
    bool dropped = false;

    /**
     * Absolute end-to-end deadline (0 = none). Propagated down the
     * call chain: every hop admission-checks against it, so work is
     * never queued for a request whose caller has already given up.
     */
    Tick deadline = 0;

    /**
     * Terminal failure of the *end-to-end* request (a trace::SpanStatus
     * value; 0 while healthy). Set when the entry-level RPC fails after
     * resilience is exhausted.
     */
    std::uint8_t failStatus = 0;

    /** RPC attempts beyond the first, summed over all hops. */
    std::uint32_t retries = 0;

    /**
     * Total time spent processing network requests on behalf of this
     * request across all hops: kernel TCP work, (de)serialization,
     * NIC queueing and wire time. Parallel branches sum, so this is
     * "work time", not wall time.
     */
    Tick networkTime = 0;

    /** Total handler compute (incl. I/O wait) across all hops. */
    Tick appTime = 0;

    /**
     * Subset of networkTime spent in kernel TCP processing (or, with
     * the offload, in the residual host interaction + FPGA pipeline).
     * This is the quantity Fig 16 reports a 10-68x improvement on.
     */
    Tick tcpProcTime = 0;

    /** Pure wire/switch propagation across all hops (not "work"). */
    Tick wireTime = 0;

    /** Total time queued for worker threads across all hops. */
    Tick queueTime = 0;

    /**
     * Most recent data key sampled for this request (keyed cache
     * stages; 0 until the first keyed access). Observability only:
     * routing passes the key explicitly through the RPC path, because
     * this object is shared by every concurrent hop of the request.
     */
    std::uint64_t dataKey = 0;

    /**
     * Outcome of the most recent keyed store access performed on a
     * *remote* shard of a partitioned world: 0 = none, 1 = miss,
     * 2 = hit. Written by the home shard's delta merge and read by the
     * caller's cache-stage continuation; both happen inside the same
     * atomic engine event, so the shared field cannot race.
     */
    std::uint8_t remoteHit = 0;

    /** Distributed-tracing id (0 when tracing is off). */
    trace::TraceId traceId = 0;

    /** End-to-end latency; valid after completion. */
    Tick
    latency() const
    {
        return completeTime >= injectTime ? completeTime - injectTime : 0;
    }
};

using RequestPtr = std::shared_ptr<Request>;

/**
 * A query type of an end-to-end application (Sec 3.8, "query
 * diversity"): e.g. composePost with text vs video media, or
 * placeOrder vs browseCatalogue. Types modulate compute and payload
 * along the same graph, and can enable tagged handler stages.
 */
struct QueryType
{
    /** Name for reporting ("composePost-video"). */
    std::string name = "default";

    /** Relative frequency in the generated mix. */
    double weight = 1.0;

    /** Multiplier on every compute stage's cycles. */
    double computeScale = 1.0;

    /** Extra payload bytes carried on every hop (embedded media). */
    Bytes extraPayloadBytes = 0;

    /**
     * Tags enabling optional handler stages: a stage with a non-empty
     * onlyForTag runs only when that tag is in this set.
     */
    std::vector<std::string> tags;

    /**
     * Admission-control priority class. Only consulted when the App's
     * QoS subsystem is enabled; the default keeps every query
     * user-facing.
     */
    QosClass qosClass = QosClass::UserFacing;

    /** @return true if @p tag is in this query's tag set. */
    bool
    hasTag(const std::string &tag) const
    {
        for (const auto &t : tags)
            if (t == tag)
                return true;
        return false;
    }
};

} // namespace uqsim::service

#endif // UQSIM_SERVICE_REQUEST_HH
