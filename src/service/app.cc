#include "service/app.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/logging.hh"

namespace uqsim::service {

/**
 * Per-RPC handler execution context: the request being served at one
 * instance, plus the span under construction. Shared between the stage
 * interpreter and the reply continuation.
 */
struct HandlerCtx
{
    Instance *inst = nullptr;
    RequestPtr req;
    trace::Span span;
    /** Reply continuation installed by rpcCall. */
    std::function<void(std::shared_ptr<HandlerCtx>)> respond;
};

namespace {

/** Shared accounting for one in-flight RPC. */
struct CallState
{
    explicit CallState(Tick start) : tStart(start) {}
    Tick tStart;
    Tick callerNet = 0;
};

} // namespace

App::App(Simulator &sim, cpu::Cluster &cluster, net::Network &network,
         Config config, std::uint64_t seed)
    : sim_(sim), cluster_(cluster), network_(network),
      config_(std::move(config)), rng_(seed),
      traceStore_(config_.traceCapacity), collector_(traceStore_)
{
    collector_.setEnabled(config_.tracing);
    collector_.setSampleEvery(config_.traceSampleEvery);
    collector_.bindMetrics(metrics_);
    clientServiceId_ = traceStore_.intern("client");

    injected_ = &metrics_.counter("app.requests_injected");
    completed_ = &metrics_.counter("app.requests_completed");
    completedInQos_ = &metrics_.counter("app.requests_completed_in_qos");
    droppedRequests_ = &metrics_.counter("app.requests_dropped");
    poolBlocked_ = &metrics_.counter("rpc.pool.blocked_acquires");
}

Microservice &
App::addService(ServiceDef def)
{
    if (services_.count(def.name))
        fatal(strCat("duplicate service '", def.name, "'"));
    auto svc = std::make_unique<Microservice>(*this, std::move(def));
    Microservice &ref = *svc;
    serviceOrder_.push_back(&ref);
    services_[ref.name()] = std::move(svc);
    return ref;
}

bool
App::hasService(const std::string &name) const
{
    return services_.count(name) > 0;
}

Microservice &
App::service(const std::string &name)
{
    auto it = services_.find(name);
    if (it == services_.end())
        fatal(strCat("unknown service '", name, "'"));
    return *it->second;
}

const Microservice &
App::service(const std::string &name) const
{
    auto it = services_.find(name);
    if (it == services_.end())
        fatal(strCat("unknown service '", name, "'"));
    return *it->second;
}

void
App::setEntry(const std::string &name)
{
    if (!hasService(name))
        fatal(strCat("entry service '", name, "' does not exist"));
    entry_ = name;
}

unsigned
App::addQueryType(QueryType qt)
{
    queryTypes_.push_back(std::move(qt));
    e2eByQuery_.push_back(std::make_unique<Histogram>());
    return static_cast<unsigned>(queryTypes_.size() - 1);
}

Instance &
App::addInstance(const std::string &name, cpu::Server &server)
{
    return service(name).addInstance(server);
}

void
App::setClientServer(cpu::Server &server)
{
    clientServer_ = &server;
}

void
App::validate() const
{
    if (entry_.empty())
        fatal(strCat("app '", config_.name, "': no entry service set"));
    for (const Microservice *svc : serviceOrder_) {
        for (const std::string &target : svc->def().handler.callTargets()) {
            if (!hasService(target))
                fatal(strCat("service '", svc->name(), "' calls unknown '",
                             target, "'"));
            if (target == svc->name())
                fatal(strCat("service '", svc->name(), "' calls itself"));
        }
        if (svc->instances().empty())
            fatal(strCat("service '", svc->name(), "' has no instances"));
    }
    if (!clientServer_)
        fatal(strCat("app '", config_.name, "': no client server set"));
}

std::string
App::exportDot() const
{
    std::ostringstream os;
    os << "digraph \"" << config_.name << "\" {\n";
    os << "  rankdir=LR;\n";
    for (const Microservice *svc : serviceOrder_) {
        const char *shape = "box";
        switch (svc->def().kind) {
          case ServiceKind::Frontend:
            shape = "house";
            break;
          case ServiceKind::Cache:
            shape = "oval";
            break;
          case ServiceKind::Database:
            shape = "cylinder";
            break;
          default:
            break;
        }
        os << "  \"" << svc->name() << "\" [shape=" << shape << "];\n";
    }
    for (const Microservice *svc : serviceOrder_)
        for (const std::string &t : svc->def().handler.callTargets())
            os << "  \"" << svc->name() << "\" -> \"" << t << "\";\n";
    if (!entry_.empty()) {
        os << "  \"client\" [shape=plaintext];\n";
        os << "  \"client\" -> \"" << entry_ << "\";\n";
    }
    os << "}\n";
    return os.str();
}

double
App::kernelIpc(const cpu::Server &server)
{
    auto it = kernelIpcCache_.find(server.model().name);
    if (it != kernelIpcCache_.end())
        return it->second;
    // Static profile of the kernel TCP/IP path: moderate footprint,
    // fully kernel-mode, memory-touching code.
    cpu::ServiceProfile kp;
    kp.name = "kernel-tcp";
    kp.codeFootprintKb = 600.0;
    kp.branchEntropy = 0.20;
    kp.memIntensity = 0.40;
    kp.kernelShare = 1.0;
    kp.libShare = 0.0;
    const double ipc = cpu::MicroarchModel::effectiveIpc(kp, server.model());
    kernelIpcCache_[server.model().name] = ipc;
    return ipc;
}

double
App::serviceIpc(const Microservice &svc, const cpu::Server &server)
{
    const std::string key = svc.name() + "/" + server.model().name;
    auto it = serviceIpcCache_.find(key);
    if (it != serviceIpcCache_.end())
        return it->second;
    const double ipc =
        cpu::MicroarchModel::effectiveIpc(svc.def().profile, server.model());
    serviceIpcCache_[key] = ipc;
    return ipc;
}

rpc::ConnectionPool &
App::poolFor(const void *caller, const Microservice &target)
{
    const PoolKey key{caller, &target};
    auto it = pools_.find(key);
    if (it == pools_.end()) {
        const auto &proto = target.def().protocol;
        it = pools_
                 .emplace(key, std::make_unique<rpc::ConnectionPool>(
                                   proto.connectionsPerPair,
                                   proto.connectionBlocking,
                                   poolBlocked_))
                 .first;
    }
    return *it->second;
}

void
App::chargeCompute(Microservice &svc, double cycles, double ipc)
{
    const auto &p = svc.def().profile;
    const double non_kernel = std::max(1e-9, 1.0 - p.kernelShare);
    const double lib_frac = std::clamp(p.libShare / non_kernel, 0.0, 1.0);
    const double instr = cycles * ipc;
    svc.chargeLib(cycles * lib_frac, instr * lib_frac);
    svc.chargeUser(cycles * (1.0 - lib_frac), instr * (1.0 - lib_frac));
}

void
App::chargeNetwork(Microservice *svc, double cycles, double ipc)
{
    if (svc)
        svc->chargeKernel(cycles, cycles * ipc);
}

void
App::rpcCall(unsigned caller_server, Instance *caller_inst,
             Microservice &target, RequestPtr req,
             trace::SpanId parent_span, Bytes req_bytes, Bytes resp_bytes,
             bool carries_media,
             std::function<void(Tick wall, Tick caller_net)> done)
{
    // Capture only pointers to stable objects (the App owns services;
    // ServiceDef, pools and instances never move during a run).
    App *app = this;
    Microservice *tgt = &target;
    const rpc::ProtocolModel *proto = &target.def().protocol;

    const QueryType &qt = queryTypes_[req->queryType];
    const Bytes req_payload =
        (req_bytes ? req_bytes : target.def().defaultRequestBytes) +
        (carries_media ? qt.extraPayloadBytes : 0);
    const Bytes resp_payload =
        resp_bytes ? resp_bytes : target.def().defaultResponseBytes;
    const Bytes req_wire = proto->wireSize(req_payload);
    const Bytes resp_wire = proto->wireSize(resp_payload);

    const void *caller_key =
        caller_inst ? static_cast<const void *>(caller_inst)
                    : static_cast<const void *>(this);
    rpc::ConnectionPool *pool = &poolFor(caller_key, target);
    Microservice *caller_svc = caller_inst ? &caller_inst->svc() : nullptr;

    auto cs = std::make_shared<CallState>(sim_.now());
    auto done_sh = std::make_shared<
        std::function<void(Tick, Tick)>>(std::move(done));

    pool->acquire([app, caller_server, caller_svc, tgt, req, parent_span,
                   req_payload, resp_payload, req_wire, resp_wire, proto,
                   pool, cs, done_sh]() {
        cpu::Server &csrv = app->cluster_.server(caller_server);
        const bool fpga = app->config_.fpga.enabled;
        const Cycles send_tcp =
            fpga ? app->config_.fpga.hostSendCycles
                 : app->config_.tcp.sendCost(req_wire);
        const Cycles send_cycles =
            proto->serializeCost(req_payload) + send_tcp;
        const double send_tcp_frac =
            static_cast<double>(send_tcp) /
            static_cast<double>(std::max<Cycles>(1, send_cycles));
        const double kipc = app->kernelIpc(csrv);
        app->chargeNetwork(caller_svc, static_cast<double>(send_cycles),
                           kipc);

        csrv.execute(send_cycles, kipc, [app, caller_server, tgt, req,
                                         parent_span, resp_payload,
                                         req_payload, req_wire, resp_wire,
                                         proto, pool, cs, send_tcp_frac,
                                         done_sh](Tick send_busy) {
            req->networkTime += send_busy;
            req->tcpProcTime += static_cast<Tick>(
                send_tcp_frac * static_cast<double>(send_busy));
            cs->callerNet += send_busy;

            Instance *ti = &tgt->selectInstance(*req);
            const unsigned callee_server = ti->server().id();
            const bool fpga = app->config_.fpga.enabled;
            const Tick fpga_lat =
                fpga ? app->config_.fpga.pipelineLatency : 0;

            // Reply continuation: runs on the callee once the handler
            // (or the drop path) finishes.
            auto respond = [app, caller_server, callee_server, tgt, ti,
                            req, resp_payload, resp_wire, proto, pool, cs,
                            fpga_lat,
                            done_sh](std::shared_ptr<HandlerCtx> ctx) {
                const bool f = app->config_.fpga.enabled;
                const Cycles reply_tcp =
                    f ? app->config_.fpga.hostSendCycles
                      : app->config_.tcp.sendCost(resp_wire);
                const Cycles reply_cycles =
                    proto->serializeCost(resp_payload) + reply_tcp;
                const double reply_tcp_frac =
                    static_cast<double>(reply_tcp) /
                    static_cast<double>(
                        std::max<Cycles>(1, reply_cycles));
                const double kipc_t = app->kernelIpc(ti->server());
                app->chargeNetwork(tgt, static_cast<double>(reply_cycles),
                                   kipc_t);
                ti->server().execute(reply_cycles, kipc_t,
                                     [app, caller_server, callee_server,
                                      req, resp_payload, resp_wire, proto,
                                      pool, cs, fpga_lat, ctx,
                                      reply_tcp_frac,
                                      done_sh](Tick reply_busy) {
                    req->networkTime += reply_busy;
                    req->tcpProcTime += static_cast<Tick>(
                        reply_tcp_frac * static_cast<double>(reply_busy));
                    if (ctx) {
                        ctx->span.networkTime += reply_busy;
                        ctx->span.end = app->sim_.now();
                        const Tick dur = ctx->span.duration();
                        Microservice &svc = ctx->inst->svc();
                        svc.mutableLatency().record(dur);
                        svc.latencyWindow().record(app->sim_.now(), dur);
                        ++ctx->inst->served_;
                        if (app->config_.tracing)
                            app->collector_.collect(ctx->span);
                    }
                    app->network_.send(callee_server, caller_server,
                                       resp_wire,
                                       [app, caller_server, req,
                                        resp_payload, resp_wire, proto,
                                        pool, cs, fpga_lat,
                                        done_sh](Tick queueing_tx,
                                                 Tick prop) {
                        auto finish = [app, caller_server, req,
                                       resp_payload, resp_wire, proto,
                                       pool, cs, queueing_tx, prop,
                                       fpga_lat, done_sh]() {
                            req->networkTime += queueing_tx + fpga_lat;
                            req->tcpProcTime += fpga_lat;
                            req->wireTime += prop;
                            cs->callerNet += queueing_tx + fpga_lat;
                            cpu::Server &csrv2 =
                                app->cluster_.server(caller_server);
                            const bool f2 = app->config_.fpga.enabled;
                            const Cycles recv_tcp =
                                f2 ? app->config_.fpga.hostRecvCycles
                                   : app->config_.tcp.recvCost(resp_wire);
                            const Cycles recv_cycles =
                                proto->deserializeCost(resp_payload) +
                                recv_tcp;
                            const double recv_tcp_frac =
                                static_cast<double>(recv_tcp) /
                                static_cast<double>(
                                    std::max<Cycles>(1, recv_cycles));
                            csrv2.execute(recv_cycles,
                                          app->kernelIpc(csrv2),
                                          [app, req, pool, cs,
                                           recv_tcp_frac,
                                           done_sh](Tick recv_busy) {
                                req->networkTime += recv_busy;
                                req->tcpProcTime += static_cast<Tick>(
                                    recv_tcp_frac *
                                    static_cast<double>(recv_busy));
                                cs->callerNet += recv_busy;
                                pool->release();
                                (*done_sh)(app->sim_.now() - cs->tStart,
                                           cs->callerNet);
                            });
                        };
                        if (fpga_lat > 0)
                            app->sim_.schedule(fpga_lat, finish);
                        else
                            finish();
                    });
                });
            };

            app->network_.send(
                caller_server, callee_server, req_wire,
                [app, tgt, ti, req, parent_span, req_payload, req_wire, cs,
                 fpga_lat, proto,
                 respond = std::move(respond)](Tick queueing_tx,
                                               Tick prop) mutable {
                auto deliver = [app, tgt, ti, req, parent_span,
                                req_payload, req_wire, cs, queueing_tx,
                                prop, fpga_lat, proto,
                                respond = std::move(respond)]() mutable {
                    req->networkTime += queueing_tx + fpga_lat;
                    req->tcpProcTime += fpga_lat;
                    req->wireTime += prop;
                    cs->callerNet += queueing_tx + fpga_lat;
                    const bool f = app->config_.fpga.enabled;
                    const Cycles rr_tcp =
                        f ? app->config_.fpga.hostRecvCycles
                          : app->config_.tcp.recvCost(req_wire);
                    const Cycles recv_cycles =
                        proto->deserializeCost(req_payload) + rr_tcp;
                    const double rr_tcp_frac =
                        static_cast<double>(rr_tcp) /
                        static_cast<double>(
                            std::max<Cycles>(1, recv_cycles));
                    const double kipc_t = app->kernelIpc(ti->server());
                    app->chargeNetwork(
                        tgt, static_cast<double>(recv_cycles), kipc_t);
                    ti->server().execute(
                        recv_cycles, kipc_t,
                        [app, ti, req, parent_span, rr_tcp_frac,
                         respond = std::move(respond)](
                            Tick recv_busy) mutable {
                        req->networkTime += recv_busy;
                        req->tcpProcTime += static_cast<Tick>(
                            rr_tcp_frac * static_cast<double>(recv_busy));
                        app->deliverToInstance(*ti, req, parent_span,
                                               recv_busy,
                                               std::move(respond));
                    });
                };
                if (fpga_lat > 0)
                    app->sim_.schedule(fpga_lat, std::move(deliver));
                else
                    deliver();
            });
        });
    });
}

void
App::deliverToInstance(
    Instance &inst, RequestPtr req, trace::SpanId parent_span,
    Tick pre_network,
    std::function<void(std::shared_ptr<HandlerCtx>)> respond)
{
    if (inst.queue_.size() >= inst.svc().def().queueCapacity) {
        // Queue overflow: drop and immediately unwind to the caller.
        req->dropped = true;
        ++inst.dropped_;
        respond(nullptr);
        return;
    }
    Instance::Arrival arrival;
    arrival.req = std::move(req);
    arrival.parentSpan = parent_span;
    arrival.enqueued = sim_.now();
    arrival.preNetworkTime = pre_network;
    arrival.respondCtx = std::move(respond);
    inst.queue_.push_back(std::move(arrival));
    maybeStartHandling(inst);
}

void
App::maybeStartHandling(Instance &inst)
{
    while (inst.freeThreads_ > 0 && !inst.queue_.empty()) {
        Instance::Arrival a = std::move(inst.queue_.front());
        inst.queue_.pop_front();
        --inst.freeThreads_;

        auto ctx = std::make_shared<HandlerCtx>();
        ctx->inst = &inst;
        ctx->req = a.req;
        ctx->respond = std::move(a.respondCtx);
        ctx->span.traceId = a.req->traceId;
        ctx->span.spanId = ids_.nextSpan();
        ctx->span.parentSpanId = a.parentSpan;
        ctx->span.service = inst.svc().traceServiceId();
        ctx->span.instance = inst.index();
        ctx->span.queryType = a.req->queryType;
        // Arrival is timestamped before kernel receive processing.
        ctx->span.start = a.enqueued >= a.preNetworkTime
                              ? a.enqueued - a.preNetworkTime
                              : 0;
        ctx->span.queueTime = sim_.now() - a.enqueued;
        ctx->span.networkTime = a.preNetworkTime;
        ctx->req->queueTime += ctx->span.queueTime;

        runStage(ctx, 0, [this, ctx]() {
            Instance &done_inst = *ctx->inst;
            ++done_inst.freeThreads_;
            // The reply path does not hold a worker thread; pull the
            // next queued request in before responding.
            maybeStartHandling(done_inst);
            ctx->respond(ctx);
        });
    }
}

void
App::runStage(std::shared_ptr<HandlerCtx> ctx, std::size_t idx,
              std::function<void()> done)
{
    Microservice &svc = ctx->inst->svc();
    const auto &stages = svc.def().handler.stages;
    if (idx >= stages.size()) {
        done();
        return;
    }
    const Stage &st = stages[idx];
    auto next = [this, ctx, idx, done = std::move(done)]() mutable {
        runStage(ctx, idx + 1, std::move(done));
    };

    const QueryType &qt = queryTypes_[ctx->req->queryType];
    if (!st.onlyForTag.empty() && !qt.hasTag(st.onlyForTag)) {
        next();
        return;
    }
    if (st.probability < 1.0 && !rng_.bernoulli(st.probability)) {
        next();
        return;
    }

    switch (st.kind) {
      case Stage::Kind::Compute: {
        const auto &prof = svc.def().profile;
        const double cycles =
            std::max(0.0, st.computeCycles.sample(rng_)) * qt.computeScale;
        const double cpu_cycles = cycles * (1.0 - prof.ioBoundFraction);
        const double io_cycles = cycles - cpu_cycles;
        cpu::Server &server = ctx->inst->server();
        const double ipc = serviceIpc(svc, server);
        // I/O waits do not consume the core and do not stretch when
        // frequency drops: convert at the *nominal* frequency.
        const double nominal_ghz = server.model().nominalFreqMhz / 1000.0;
        const Tick io_ns = static_cast<Tick>(
            io_cycles / std::max(1e-9, ipc * nominal_ghz));
        chargeCompute(svc, cpu_cycles, ipc);
        server.execute(static_cast<Cycles>(cpu_cycles), ipc,
                       [this, ctx, io_ns,
                        next = std::move(next)](Tick busy) mutable {
            ctx->inst->cpuBusyTime_ += busy;
            auto fin = [ctx, busy, io_ns,
                        next = std::move(next)]() mutable {
                ctx->span.appTime += busy + io_ns;
                ctx->req->appTime += busy + io_ns;
                next();
            };
            if (io_ns > 0)
                sim_.schedule(io_ns, std::move(fin));
            else
                fin();
        });
        return;
      }
      case Stage::Kind::Call: {
        if (st.fanout == 0) {
            next();
            return;
        }
        Microservice *target = &service(st.target);
        const unsigned server_id = ctx->inst->server().id();
        const Tick call_start = sim_.now();
        if (st.parallel) {
            auto remaining = std::make_shared<unsigned>(st.fanout);
            auto net_sum = std::make_shared<Tick>(0);
            auto joined_next =
                std::make_shared<std::function<void()>>(std::move(next));
            for (unsigned i = 0; i < st.fanout; ++i) {
                rpcCall(server_id, ctx->inst, *target, ctx->req,
                        ctx->span.spanId, st.requestBytes, st.responseBytes,
                        st.carriesMedia,
                        [this, ctx, remaining, net_sum, call_start,
                         joined_next](Tick wall, Tick caller_net) {
                    (void)wall;
                    *net_sum += caller_net;
                    if (--*remaining == 0) {
                        const Tick wall_total = sim_.now() - call_start;
                        ctx->span.networkTime += *net_sum;
                        ctx->span.downstreamWait +=
                            wall_total > *net_sum ? wall_total - *net_sum
                                                  : 0;
                        (*joined_next)();
                    }
                });
            }
        } else {
            auto do_call =
                std::make_shared<std::function<void(unsigned)>>();
            auto next_shared =
                std::make_shared<std::function<void()>>(std::move(next));
            const Stage *stage = &st;
            *do_call = [this, ctx, stage, target, server_id, do_call,
                        next_shared](unsigned i) {
                if (i >= stage->fanout) {
                    (*next_shared)();
                    return;
                }
                rpcCall(server_id, ctx->inst, *target, ctx->req,
                        ctx->span.spanId, stage->requestBytes,
                        stage->responseBytes, stage->carriesMedia,
                        [ctx, do_call, i](Tick wall, Tick caller_net) {
                    ctx->span.networkTime += caller_net;
                    ctx->span.downstreamWait +=
                        wall > caller_net ? wall - caller_net : 0;
                    (*do_call)(i + 1);
                });
            };
            (*do_call)(0);
        }
        return;
      }
      case Stage::Kind::Delay: {
        const Tick d = static_cast<Tick>(
            std::max(0.0, st.delayNs.sample(rng_)));
        const bool is_net = st.delayIsNetwork;
        sim_.schedule(d, [ctx, d, is_net, next = std::move(next)]() mutable {
            if (is_net) {
                ctx->span.networkTime += d;
                ctx->req->networkTime += d;
            } else {
                ctx->span.appTime += d;
                ctx->req->appTime += d;
            }
            next();
        });
        return;
      }
      case Stage::Kind::Cache: {
        Microservice *cache_tier = &service(st.target);
        const unsigned server_id = ctx->inst->server().id();
        const bool hit = rng_.bernoulli(st.hitRatio);
        const Stage *stage = &st;
        auto next_shared =
            std::make_shared<std::function<void()>>(std::move(next));
        rpcCall(server_id, ctx->inst, *cache_tier, ctx->req,
                ctx->span.spanId, st.requestBytes, st.responseBytes,
                st.carriesMedia,
                [this, ctx, stage, server_id, hit,
                 next_shared](Tick wall, Tick caller_net) {
            ctx->span.networkTime += caller_net;
            ctx->span.downstreamWait +=
                wall > caller_net ? wall - caller_net : 0;
            if (hit || stage->dbTarget.empty()) {
                (*next_shared)();
                return;
            }
            Microservice *db = &service(stage->dbTarget);
            rpcCall(server_id, ctx->inst, *db, ctx->req, ctx->span.spanId,
                    stage->requestBytes, stage->responseBytes,
                    stage->carriesMedia,
                    [ctx, next_shared](Tick wall2, Tick caller_net2) {
                ctx->span.networkTime += caller_net2;
                ctx->span.downstreamWait += wall2 > caller_net2
                                                ? wall2 - caller_net2
                                                : 0;
                (*next_shared)();
            });
        });
        return;
      }
    }
    panic("unhandled stage kind");
}

void
App::inject(unsigned query_type, std::uint64_t user_id, CompletionFn done)
{
    if (!clientServer_)
        fatal("App::inject without a client server");
    if (queryTypes_.empty())
        addQueryType(QueryType{});
    if (query_type >= queryTypes_.size())
        fatal(strCat("unknown query type ", query_type));

    auto req = std::make_shared<Request>();
    req->id = nextRequestId_++;
    req->queryType = query_type;
    req->userId = user_id;
    req->injectTime = sim_.now();
    req->traceId = config_.tracing ? ids_.nextTrace() : 0;
    injected_->inc();

    const trace::SpanId client_span_id = ids_.nextSpan();

    rpcCall(clientServer_->id(), nullptr, service(entry_), req,
            client_span_id, config_.clientRequestBytes,
            config_.clientResponseBytes, /*carries_media=*/true,
            [this, req, client_span_id,
             done = std::move(done)](Tick wall, Tick caller_net) {
        (void)wall;
        req->completeTime = sim_.now();
        if (req->dropped) {
            droppedRequests_->inc();
        } else {
            completed_->inc();
            const Tick lat = req->latency();
            e2eLatency_.record(lat);
            e2eByQuery_[req->queryType]->record(lat);
            if (lat <= config_.qosLatency)
                completedInQos_->inc();
            totalNetworkTime_ += static_cast<double>(req->networkTime);
            totalAppTime_ += static_cast<double>(req->appTime);
        }
        if (config_.tracing) {
            trace::Span client_span;
            client_span.traceId = req->traceId;
            client_span.spanId = client_span_id;
            client_span.parentSpanId = trace::kNoParent;
            client_span.service = clientServiceId_;
            client_span.queryType = req->queryType;
            client_span.start = req->injectTime;
            client_span.end = req->completeTime;
            client_span.networkTime = caller_net;
            collector_.collect(client_span);
        }
        if (done)
            done(*req);
    });
}

const Histogram &
App::endToEndLatencyFor(unsigned query_type) const
{
    if (query_type >= e2eByQuery_.size())
        fatal(strCat("unknown query type ", query_type));
    return *e2eByQuery_[query_type];
}

double
App::meanNetworkTimePerRequest() const
{
    const std::uint64_t n = completed();
    return n ? totalNetworkTime_ / static_cast<double>(n) : 0.0;
}

double
App::meanAppTimePerRequest() const
{
    const std::uint64_t n = completed();
    return n ? totalAppTime_ / static_cast<double>(n) : 0.0;
}

void
App::statReset()
{
    e2eLatency_.reset();
    for (auto &h : e2eByQuery_)
        h->reset();
    metrics_.resetAll();
    totalNetworkTime_ = 0.0;
    totalAppTime_ = 0.0;
    traceStore_.clear();
    for (Microservice *svc : serviceOrder_) {
        svc->mutableLatency().reset();
        for (const auto &inst : svc->instances()) {
            inst->served_ = 0;
            inst->dropped_ = 0;
            inst->cpuBusyTime_ = 0;
        }
    }
    cluster_.statResetAll();
}

} // namespace uqsim::service
