#include "service/app.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/logging.hh"

namespace uqsim::service {

/**
 * Per-RPC handler execution context: the request being served at one
 * instance, plus the span under construction. Shared between the stage
 * interpreter and the reply continuation.
 */
struct HandlerCtx
{
    Instance *inst = nullptr;
    RequestPtr req;
    trace::Span span;
    /** Reply continuation installed by rpcAttempt. */
    std::function<void(std::shared_ptr<HandlerCtx>, RpcStatus)> respond;
};

/**
 * Shared state of one RPC attempt. Settling (success, timeout, crash,
 * refusal) happens exactly once through App::settleAttempt; the
 * `settled` flag is shared with the server-side Arrival so zombie
 * continuations — late replies, deliveries of abandoned requests —
 * can detect they lost the race and quietly stop.
 */
struct AttemptState
{
    std::shared_ptr<bool> settled = std::make_shared<bool>(false);
    App *app = nullptr;
    rpc::ConnectionPool *pool = nullptr;
    rpc::ConnectionPool::Ticket ticket =
        rpc::ConnectionPool::kGrantedImmediately;
    bool poolAcquired = false;
    bool poolReleased = false;
    EventHandle timeoutEv;
    EventHandle acquireEv;
    /** Target instance while registered for crash tracking. */
    Instance *target = nullptr;
    bool registered = false;
    Tick tStart = 0;
    Tick callerNet = 0;
    RpcDone done;

    ~AttemptState()
    {
        // An attempt can die without settling (e.g. its message was
        // dropped by a partition and no timeout was set); keep the
        // crash registry free of dangling pointers regardless.
        if (registered && app && target)
            app->unregisterAttempt(*target, this);
    }
};

App::App(SimContext ctx, cpu::Cluster &cluster, net::Network &network,
         Config config, std::uint64_t seed)
    : ctx_(ctx), cluster_(cluster), network_(network),
      config_(std::move(config)), rng_(seed),
      resilienceRng_(seed ^ 0x524553494c49454eull),
      traceStore_(config_.traceCapacity), collector_(traceStore_)
{
    collector_.setEnabled(config_.tracing);
    collector_.setSampleEvery(config_.traceSampleEvery);
    collector_.bindMetrics(metrics_);
    clientServiceId_ = traceStore_.intern("client");

    injected_ = &metrics_.counter("app.requests_injected");
    completed_ = &metrics_.counter("app.requests_completed");
    completedInQos_ = &metrics_.counter("app.requests_completed_in_qos");
    droppedRequests_ = &metrics_.counter("app.requests_dropped");
    requestsFailed_ = &metrics_.counter("app.requests_failed");
    poolBlocked_ = &metrics_.counter("rpc.pool.blocked_acquires");
    rpcErrors_ = &metrics_.counter("rpc.errors");
    rpcTimeouts_ = &metrics_.counter("rpc.timeouts");
    rpcRetries_ = &metrics_.counter("rpc.retries");
    rpcRetryBudgetExhausted_ =
        &metrics_.counter("rpc.retry_budget_exhausted");
    rpcBreakerFastFails_ = &metrics_.counter("rpc.breaker_fast_fails");
    rpcDeadlineExceeded_ = &metrics_.counter("rpc.deadline_exceeded");
    rpcShed_ = &metrics_.counter("rpc.shed");
    rpcPoolTimeouts_ = &metrics_.counter("rpc.pool.acquire_timeouts");
    rpcCrashedInFlight_ = &metrics_.counter("rpc.crashed_in_flight");
    rpcAbandonedArrivals_ = &metrics_.counter("rpc.abandoned_arrivals");
}

Microservice &
App::addService(ServiceDef def)
{
    if (services_.count(def.name))
        fatal(strCat("duplicate service '", def.name, "'"));
    auto svc = std::make_unique<Microservice>(*this, std::move(def));
    Microservice &ref = *svc;
    serviceOrder_.push_back(&ref);
    services_[ref.name()] = std::move(svc);
    return ref;
}

bool
App::hasService(const std::string &name) const
{
    return services_.count(name) > 0;
}

Microservice &
App::service(const std::string &name)
{
    auto it = services_.find(name);
    if (it == services_.end())
        fatal(strCat("unknown service '", name, "'"));
    return *it->second;
}

const Microservice &
App::service(const std::string &name) const
{
    auto it = services_.find(name);
    if (it == services_.end())
        fatal(strCat("unknown service '", name, "'"));
    return *it->second;
}

void
App::setEntry(const std::string &name)
{
    if (!hasService(name))
        fatal(strCat("entry service '", name, "' does not exist"));
    entry_ = name;
}

unsigned
App::addQueryType(QueryType qt)
{
    queryTypes_.push_back(std::move(qt));
    e2eByQuery_.push_back(std::make_unique<Histogram>());
    return static_cast<unsigned>(queryTypes_.size() - 1);
}

Instance &
App::addInstance(const std::string &name, cpu::Server &server)
{
    return service(name).addInstance(server);
}

void
App::setClientServer(cpu::Server &server)
{
    clientServer_ = &server;
}

void
App::validate() const
{
    if (entry_.empty())
        fatal(strCat("app '", config_.name, "': no entry service set"));
    for (const Microservice *svc : serviceOrder_) {
        for (const std::string &target : svc->def().handler.callTargets()) {
            if (!hasService(target))
                fatal(strCat("service '", svc->name(), "' calls unknown '",
                             target, "'"));
            if (target == svc->name())
                fatal(strCat("service '", svc->name(), "' calls itself"));
        }
        if (svc->instances().empty())
            fatal(strCat("service '", svc->name(), "' has no instances"));
    }
    if (!clientServer_)
        fatal(strCat("app '", config_.name, "': no client server set"));
}

std::string
App::exportDot() const
{
    std::ostringstream os;
    os << "digraph \"" << config_.name << "\" {\n";
    os << "  rankdir=LR;\n";
    for (const Microservice *svc : serviceOrder_) {
        const char *shape = "box";
        switch (svc->def().kind) {
          case ServiceKind::Frontend:
            shape = "house";
            break;
          case ServiceKind::Cache:
            shape = "oval";
            break;
          case ServiceKind::Database:
            shape = "cylinder";
            break;
          default:
            break;
        }
        os << "  \"" << svc->name() << "\" [shape=" << shape << "];\n";
    }
    for (const Microservice *svc : serviceOrder_)
        for (const std::string &t : svc->def().handler.callTargets())
            os << "  \"" << svc->name() << "\" -> \"" << t << "\";\n";
    if (!entry_.empty()) {
        os << "  \"client\" [shape=plaintext];\n";
        os << "  \"client\" -> \"" << entry_ << "\";\n";
    }
    os << "}\n";
    return os.str();
}

double
App::kernelIpc(const cpu::Server &server)
{
    auto it = kernelIpcCache_.find(server.model().name);
    if (it != kernelIpcCache_.end())
        return it->second;
    // Static profile of the kernel TCP/IP path: moderate footprint,
    // fully kernel-mode, memory-touching code.
    cpu::ServiceProfile kp;
    kp.name = "kernel-tcp";
    kp.codeFootprintKb = 600.0;
    kp.branchEntropy = 0.20;
    kp.memIntensity = 0.40;
    kp.kernelShare = 1.0;
    kp.libShare = 0.0;
    const double ipc = cpu::MicroarchModel::effectiveIpc(kp, server.model());
    kernelIpcCache_[server.model().name] = ipc;
    return ipc;
}

double
App::serviceIpc(const Microservice &svc, const cpu::Server &server)
{
    const std::string key = svc.name() + "/" + server.model().name;
    auto it = serviceIpcCache_.find(key);
    if (it != serviceIpcCache_.end())
        return it->second;
    const double ipc =
        cpu::MicroarchModel::effectiveIpc(svc.def().profile, server.model());
    serviceIpcCache_[key] = ipc;
    return ipc;
}

rpc::ConnectionPool &
App::poolFor(const void *caller, const Microservice &target)
{
    const PoolKey key{caller, &target};
    auto it = pools_.find(key);
    if (it == pools_.end()) {
        const auto &proto = target.def().protocol;
        it = pools_
                 .emplace(key, std::make_unique<rpc::ConnectionPool>(
                                   proto.connectionsPerPair,
                                   proto.connectionBlocking,
                                   poolBlocked_))
                 .first;
    }
    return *it->second;
}

rpc::CircuitBreaker &
App::breakerFor(const void *caller, const Microservice &target)
{
    const PoolKey key{caller, &target};
    auto it = breakers_.find(key);
    if (it == breakers_.end())
        it = breakers_
                 .emplace(key, std::make_unique<rpc::CircuitBreaker>(
                                   target.def().resilience.breaker))
                 .first;
    return *it->second;
}

rpc::RetryBudget &
App::budgetFor(const Microservice &target)
{
    auto it = budgets_.find(&target);
    if (it == budgets_.end()) {
        const rpc::RetryPolicy &r = target.def().resilience.retry;
        it = budgets_
                 .emplace(&target,
                          rpc::RetryBudget(r.budgetRatio, r.budgetCap))
                 .first;
    }
    return it->second;
}

void
App::registerAttempt(Instance &inst, AttemptState *as)
{
    inflight_[&inst].push_back(as);
}

void
App::unregisterAttempt(Instance &inst, AttemptState *as)
{
    auto it = inflight_.find(&inst);
    if (it == inflight_.end())
        return;
    auto &v = it->second;
    v.erase(std::remove(v.begin(), v.end(), as), v.end());
    if (v.empty())
        inflight_.erase(it);
}

void
App::failInFlight(Instance &inst)
{
    auto it = inflight_.find(&inst);
    if (it == inflight_.end())
        return;
    // Settling unregisters, so detach the list first.
    std::vector<AttemptState *> victims = std::move(it->second);
    inflight_.erase(it);
    for (AttemptState *as : victims) {
        if (*as->settled)
            continue;
        as->registered = false; // already detached from the registry
        rpcCrashedInFlight_->inc();
        settleAttempt(*as, RpcStatus::Crashed);
    }
}

void
App::crashInstance(const std::string &service_name, unsigned idx)
{
    Microservice &svc = service(service_name);
    if (idx >= svc.instances().size())
        fatal(strCat("crashInstance: service '", service_name,
                     "' has no instance ", idx));
    Instance &inst = *svc.instances()[idx];
    if (!inst.active_ && inst.freeThreads_ == 0)
        return; // already down
    inst.active_ = false;
    ++inst.crashEpoch_;
    // Fail the callers first (their settle flags silence the queued
    // closures), then drop the queue: the process and its state die.
    failInFlight(inst);
    inst.queue_.clear();
    if (inst.admission_)
        inst.admission_->clear();
    inst.freeThreads_ = 0;
    if (svc.replicated()) {
        // Replicated tier: the process dies but the group's logical
        // store lives on at the surviving members. Leadership moves by
        // election; a failover replays the log into the warm store
        // (trim of the un-applied tail) instead of clearing it. Only a
        // whole-group death loses the data — the replica layer flags
        // that and the next access clears the store.
        svc.replicaSet()->onInstanceDown(idx, ctx_.now());
    } else if (data::CacheModel *model = svc.cacheModel(idx)) {
        // Keyed state dies with the process: whatever replaces this
        // shard (a restart or a standby) starts with a cold store and
        // must re-learn the hot set — the Fig 20 recovery transient.
        model->clearCold();
    }
}

void
App::restartInstance(const std::string &service_name, unsigned idx)
{
    Microservice &svc = service(service_name);
    if (idx >= svc.instances().size())
        fatal(strCat("restartInstance: service '", service_name,
                     "' has no instance ", idx));
    Instance &inst = *svc.instances()[idx];
    if (inst.active_)
        return;
    inst.freeThreads_ = svc.def().threadsPerInstance;
    inst.queue_.clear();
    if (inst.admission_)
        inst.admission_->reset(ctx_.now());
    inst.active_ = true;
    if (svc.replicated())
        // The restarted member replays the replication log before it
        // may vote, serve, or ack again (the catch-up window).
        svc.replicaSet()->onInstanceUp(idx, ctx_.now());
}

void
App::enableKeyedData(const data::DataTierConfig &config)
{
    if (!config.enabled())
        fatal("enableKeyedData: keyspace.keys must be > 0");
    if (keyspace_)
        fatal("enableKeyedData called twice");
    dataConfig_ = config;
    keyspace_ = std::make_unique<data::Keyspace>(config.keyspace);
    for (Microservice *svc : serviceOrder_) {
        const ServiceKind kind = svc->def().kind;
        if (kind == ServiceKind::Cache || kind == ServiceKind::Database)
            svc->enableKeyedRouting(config.vnodes);
        if (kind == ServiceKind::Cache)
            svc->attachCacheModels(config.cache);
    }
    // Flip every cache stage whose target is a ring-managed cache
    // tier into keyed mode.
    for (Microservice *svc : serviceOrder_) {
        for (Stage &st : svc->mutableDef().handler.stages) {
            if (st.kind != Stage::Kind::Cache)
                continue;
            if (service(st.target).def().kind == ServiceKind::Cache)
                st.keyed = true;
        }
    }
}

void
App::enablePartition(std::vector<App *> peers,
                     const std::map<std::string, unsigned> &homes)
{
    if (partitioned_)
        fatal("enablePartition called twice");
    if (replicationEnabled_)
        fatal("enablePartition: replicated tiers cannot be partitioned");
    if (config_.fpga.enabled)
        fatal("enablePartition: FPGA offload is unsupported in "
              "partition mode");
    if (peers.size() != ctx_.shardCount())
        fatal(strCat("enablePartition: ", peers.size(), " peer apps for ",
                     ctx_.shardCount(), " shards"));
    // The engine only guarantees cross-shard causality for deliveries
    // at least one lookahead ahead; every cross-shard message here
    // travels >= one wire latency, so that is the ceiling.
    if (ctx_.shardCount() > 1 &&
        ctx_.lookahead() > network_.config().wireLatency)
        fatal("enablePartition: engine lookahead exceeds the "
              "inter-shard wire latency");
    for (unsigned i = 0; i < serviceOrder_.size(); ++i) {
        Microservice *svc = serviceOrder_[i];
        auto it = homes.find(svc->name());
        if (it == homes.end())
            fatal(strCat("enablePartition: no home shard for tier '",
                         svc->name(), "'"));
        if (it->second >= ctx_.shardCount())
            fatal(strCat("enablePartition: tier '", svc->name(),
                         "' pinned to shard ", it->second, " of ",
                         ctx_.shardCount()));
        svc->setOrderIndex(i);
        svc->setHomeShard(it->second);
    }
    peerApps_ = std::move(peers);
    partitioned_ = true;
}

void
App::enableReplication(const replica::ReplicationConfig &config)
{
    if (!config.enabled())
        fatal("enableReplication: factor must be >= 2");
    if (replicationEnabled_)
        fatal("enableReplication called twice");
    if (!keyspace_)
        fatal("enableReplication requires enableKeyedData first");
    if (config.writeQuorum > config.factor)
        fatal("enableReplication: writeQuorum must be <= factor");
    if (config.txnKeys == 1)
        fatal("enableReplication: txnKeys must be 0 or >= 2");
    replicationConfig_ = config;

    bool any = false;
    for (Microservice *svc : serviceOrder_) {
        if (svc->def().kind == ServiceKind::Cache &&
            svc->keyedRouting() && svc->hasCacheModels()) {
            svc->enableReplication(config);
            any = true;
        }
    }
    if (!any)
        fatal("enableReplication: no keyed cache tier to replicate");

    // Counters are created here, not in the App constructor, so a run
    // without replication emits exactly the legacy metric set.
    rpcQuorumLost_ = &metrics_.counter("rpc.quorum_lost");
    rpcStaleRejects_ = &metrics_.counter("rpc.stale_rejects");
    if (config.txnEnabled()) {
        rpcTxnStarted_ = &metrics_.counter("rpc.txn_started");
        rpcTxnCommits_ = &metrics_.counter("rpc.txn_commits");
        rpcTxnAborts_ = &metrics_.counter("rpc.txn_aborts");
    }
    replicationEnabled_ = true;
}

void
App::enableQos(const QosConfig &config)
{
    if (!config.policy.enabled)
        fatal("enableQos: policy.enabled must be true");
    if (qosEnabled_)
        fatal("enableQos called twice");
    // A backlogged zero-weight class would never earn dequeue credit
    // (the WRR grant loop would starve it forever), so reject it here
    // as well as at the config surfaces.
    for (unsigned w : config.policy.weights)
        if (w == 0)
            fatal("enableQos: every class weight must be >= 1");
    for (double f : config.policy.shedAt)
        if (f <= 0.0 || f > 1.0)
            fatal("enableQos: shed thresholds must be in (0, 1]");
    if (config.policy.ratePerInstance < 0.0)
        fatal("enableQos: ratePerInstance must be >= 0");
    if (config.policy.burst <= 0.0)
        fatal("enableQos: burst must be > 0");

    auto classify = [this](const std::vector<std::string> &names,
                           QosClass cls) {
        for (const std::string &name : names) {
            bool found = false;
            for (QueryType &qt : queryTypes_) {
                if (qt.name == name) {
                    qt.qosClass = cls;
                    found = true;
                }
            }
            if (!found)
                fatal(strCat("enableQos: unknown query type '", name,
                             "'"));
        }
    };
    classify(config.batchQueries, QosClass::Batch);
    classify(config.bestEffortQueries, QosClass::BestEffort);

    // Counters are created here, not in the App constructor, so a run
    // without QoS emits exactly the legacy metric set.
    for (unsigned c = 0; c < kQosClassCount; ++c) {
        const char *cls = qosClassName(static_cast<QosClass>(c));
        admAdmitted_[c] =
            &metrics_.counter(strCat("admission.admitted.", cls));
        admServed_[c] =
            &metrics_.counter(strCat("admission.served.", cls));
        admShed_[c] = &metrics_.counter(strCat("admission.shed.", cls));
        admThrottled_[c] =
            &metrics_.counter(strCat("admission.throttled.", cls));
        admOverflow_[c] =
            &metrics_.counter(strCat("admission.overflow.", cls));
    }

    for (Microservice *svc : serviceOrder_) {
        svc->mutableDef().admission = config.policy;
        for (const auto &inst : svc->instances())
            inst->admission_ =
                std::make_unique<AdmissionQueue<Instance::Arrival>>(
                    config.policy, svc->def().queueCapacity,
                    ctx_.now());
    }
    qosEnabled_ = true;
}

QosClass
App::qosClassOf(unsigned query_type) const
{
    return query_type < queryTypes_.size()
               ? queryTypes_[query_type].qosClass
               : QosClass::UserFacing;
}

void
App::settleAttempt(AttemptState &as, RpcStatus status)
{
    if (*as.settled)
        return;
    *as.settled = true;
    as.timeoutEv.cancel();
    as.acquireEv.cancel();
    if (as.registered && as.target) {
        unregisterAttempt(*as.target, &as);
        as.registered = false;
    }
    if (as.poolAcquired) {
        // Mirrors the legacy completion order: connection back first,
        // then the caller continues. A timed-out attempt models its
        // connection as closed-and-replaced, which also frees a slot.
        if (!as.poolReleased) {
            as.poolReleased = true;
            as.pool->release();
        }
    } else if (as.ticket != rpc::ConnectionPool::kGrantedImmediately) {
        as.pool->cancel(as.ticket);
    }
    auto done = std::move(as.done);
    done(status, ctx_.now() - as.tStart, as.callerNet);
}

void
App::recordErrorSpan(const RequestPtr &req, trace::SpanId parent_span,
                     const Microservice &target, Tick start,
                     unsigned attempt_no, RpcStatus status)
{
    if (!config_.tracing)
        return;
    trace::Span sp;
    sp.traceId = req->traceId;
    sp.spanId = ids_.nextSpan();
    sp.parentSpanId = parent_span;
    sp.service = target.traceServiceId();
    sp.instance = 0;
    sp.queryType = req->queryType;
    sp.start = start;
    sp.end = ctx_.now();
    sp.status = static_cast<std::uint8_t>(status);
    sp.attempt = static_cast<std::uint8_t>(std::min(attempt_no, 255u));
    if (qosEnabled_)
        sp.qosClass =
            static_cast<std::uint8_t>(qosClassOf(req->queryType));
    collector_.collect(sp);
}

void
App::chargeCompute(Microservice &svc, double cycles, double ipc)
{
    const auto &p = svc.def().profile;
    const double non_kernel = std::max(1e-9, 1.0 - p.kernelShare);
    const double lib_frac = std::clamp(p.libShare / non_kernel, 0.0, 1.0);
    const double instr = cycles * ipc;
    svc.chargeLib(cycles * lib_frac, instr * lib_frac);
    svc.chargeUser(cycles * (1.0 - lib_frac), instr * (1.0 - lib_frac));
}

void
App::chargeNetwork(Microservice *svc, double cycles, double ipc)
{
    if (svc)
        svc->chargeKernel(cycles, cycles * ipc);
}

void
App::rpcCall(unsigned caller_server, Instance *caller_inst,
             Microservice &target, RequestPtr req,
             trace::SpanId parent_span, Bytes req_bytes, Bytes resp_bytes,
             bool carries_media, RpcDone done, data::RouteHint route)
{
    const rpc::ResiliencePolicy &pol = target.def().resilience;
    if (!pol.active()) {
        // Legacy fire-and-wait path: no gates, no retries, no extra
        // events — byte-identical execution to the pre-resilience
        // runtime (the digest tests depend on this).
        rpcAttempt(caller_server, caller_inst, target, req, parent_span,
                   req_bytes, resp_bytes, carries_media, 1,
                   std::move(done), route);
        return;
    }

    App *app = this;
    Microservice *tgt = &target;
    const void *caller_key =
        caller_inst ? static_cast<const void *>(caller_inst)
                    : static_cast<const void *>(this);
    rpc::CircuitBreaker *br =
        pol.breaker.enabled ? &breakerFor(caller_key, target) : nullptr;

    const Tick call_start = ctx_.now();
    if (req->deadline && call_start >= req->deadline) {
        rpcDeadlineExceeded_->inc();
        rpcErrors_->inc();
        recordErrorSpan(req, parent_span, target, call_start, 1,
                        RpcStatus::DeadlineExceeded);
        done(RpcStatus::DeadlineExceeded, 0, 0);
        return;
    }
    if (br && !br->allow(call_start)) {
        rpcBreakerFastFails_->inc();
        rpcErrors_->inc();
        recordErrorSpan(req, parent_span, target, call_start, 1,
                        RpcStatus::BreakerOpen);
        done(RpcStatus::BreakerOpen, 0, 0);
        return;
    }

    // The budget earns on first attempts only, so retry traffic is
    // capped at budgetRatio of the offered load.
    if (pol.retry.enabled() && pol.retry.budgetRatio > 0.0)
        budgetFor(target).onAttempt();

    // Retry loop: ctl->attempt references itself (for rescheduling),
    // so the cycle must be broken explicitly when the call finishes.
    struct RetryCtl
    {
        std::function<void(unsigned)> attempt;
        RpcDone done;
    };
    auto ctl = std::make_shared<RetryCtl>();
    ctl->done = std::move(done);
    auto finish = [ctl](RpcStatus s, Tick w, Tick n) {
        auto d = std::move(ctl->done);
        ctl->attempt = nullptr;
        d(s, w, n);
    };

    ctl->attempt = [app, caller_server, caller_inst, tgt, req, parent_span,
                    req_bytes, resp_bytes, carries_media, route, br, ctl,
                    finish](unsigned attempt_no) {
        const Tick attempt_start = app->ctx_.now();
        app->rpcAttempt(caller_server, caller_inst, *tgt, req, parent_span,
                        req_bytes, resp_bytes, carries_media, attempt_no,
                        [app, tgt, req, parent_span, br, ctl, finish,
                         attempt_no, attempt_start](RpcStatus status,
                                                    Tick wall,
                                                    Tick caller_net) {
            const Tick now = app->ctx_.now();
            if (br)
                br->record(now, status == RpcStatus::Ok);
            if (status == RpcStatus::Ok) {
                finish(status, wall, caller_net);
                return;
            }
            app->rpcErrors_->inc();
            app->recordErrorSpan(req, parent_span, *tgt, attempt_start,
                                 attempt_no, status);

            const rpc::RetryPolicy &rp = tgt->def().resilience.retry;
            bool retry = rp.enabled() && attempt_no < rp.maxAttempts &&
                         status != RpcStatus::DeadlineExceeded;
            if (retry && req->deadline && now >= req->deadline)
                retry = false;
            if (retry && rp.budgetRatio > 0.0 &&
                !app->budgetFor(*tgt).tryWithdraw()) {
                app->rpcRetryBudgetExhausted_->inc();
                retry = false;
            }
            if (!retry) {
                finish(status, wall, caller_net);
                return;
            }
            app->rpcRetries_->inc();
            ++req->retries;

            // Exponential backoff, decorrelated by jitter drawn from
            // the dedicated resilience stream (never the model RNG).
            Tick backoff = rp.baseBackoff;
            for (unsigned i = 1; i < attempt_no && backoff < rp.maxBackoff;
                 ++i)
                backoff *= 2;
            backoff = std::min(backoff, rp.maxBackoff);
            if (rp.jitter > 0.0 && backoff > 0) {
                const double lo =
                    std::clamp(1.0 - rp.jitter, 0.0, 1.0);
                backoff = static_cast<Tick>(
                    static_cast<double>(backoff) *
                    app->resilienceRng_.uniform(lo, 1.0));
            }
            app->ctx_.schedule(backoff, [app, tgt, req, br, ctl, finish,
                                         attempt_no]() {
                const Tick t = app->ctx_.now();
                if (req->deadline && t >= req->deadline) {
                    app->rpcDeadlineExceeded_->inc();
                    app->rpcErrors_->inc();
                    finish(RpcStatus::DeadlineExceeded, 0, 0);
                    return;
                }
                if (br && !br->allow(t)) {
                    app->rpcBreakerFastFails_->inc();
                    app->rpcErrors_->inc();
                    finish(RpcStatus::BreakerOpen, 0, 0);
                    return;
                }
                ctl->attempt(attempt_no + 1);
            });
        },
                        route);
    };
    ctl->attempt(1);
}

void
App::rpcAttempt(unsigned caller_server, Instance *caller_inst,
                Microservice &target, RequestPtr req,
                trace::SpanId parent_span, Bytes req_bytes,
                Bytes resp_bytes, bool carries_media, unsigned attempt_no,
                RpcDone done, data::RouteHint route)
{
    // Capture only pointers to stable objects (the App owns services;
    // ServiceDef, pools and instances never move during a run).
    App *app = this;
    Microservice *tgt = &target;
    const rpc::ProtocolModel *proto = &target.def().protocol;

    const QueryType &qt = queryTypes_[req->queryType];
    const Bytes req_payload =
        (req_bytes ? req_bytes : target.def().defaultRequestBytes) +
        (carries_media ? qt.extraPayloadBytes : 0);
    const Bytes resp_payload =
        resp_bytes ? resp_bytes : target.def().defaultResponseBytes;
    const Bytes req_wire = proto->wireSize(req_payload);
    const Bytes resp_wire = proto->wireSize(resp_payload);

    const void *caller_key =
        caller_inst ? static_cast<const void *>(caller_inst)
                    : static_cast<const void *>(this);
    rpc::ConnectionPool *pool = &poolFor(caller_key, target);
    Microservice *caller_svc = caller_inst ? &caller_inst->svc() : nullptr;

    const rpc::ResiliencePolicy *pol = &target.def().resilience;
    // Crash-aware selection + zombie guards engage with any policy or
    // armed fault schedule; the plain path stays exactly legacy.
    const bool resilient = pol->active() || crashTracking_;

    auto as = std::make_shared<AttemptState>();
    as->app = this;
    as->pool = pool;
    as->tStart = ctx_.now();
    as->done = std::move(done);

    // Per-attempt timeout, capped to the remaining deadline budget so
    // a deep call chain never waits past its caller's patience. When
    // the deadline is the binding constraint, expiry is reported as
    // DeadlineExceeded, not a generic timeout.
    Tick eff_timeout = pol->timeout;
    bool deadline_bound = false;
    if (req->deadline) {
        const Tick remaining =
            req->deadline > as->tStart ? req->deadline - as->tStart : 1;
        if (eff_timeout == 0 || remaining < eff_timeout) {
            eff_timeout = remaining;
            deadline_bound = true;
        }
    }
    if (eff_timeout > 0) {
        as->timeoutEv =
            ctx_.schedule(eff_timeout, [app, as, deadline_bound]() {
                if (*as->settled)
                    return;
                if (deadline_bound) {
                    app->rpcDeadlineExceeded_->inc();
                    app->settleAttempt(*as,
                                       RpcStatus::DeadlineExceeded);
                } else {
                    app->rpcTimeouts_->inc();
                    app->settleAttempt(*as, RpcStatus::Timeout);
                }
            });
    }

    as->ticket = pool->acquire([app, caller_server, caller_svc, tgt, req,
                                parent_span, req_payload, resp_payload,
                                req_wire, resp_wire, proto, attempt_no,
                                resilient, route, as]() {
        as->poolAcquired = true;
        as->acquireEv.cancel();
        cpu::Server &csrv = app->cluster_.server(caller_server);
        const bool fpga = app->config_.fpga.enabled;
        const Cycles send_tcp =
            fpga ? app->config_.fpga.hostSendCycles
                 : app->config_.tcp.sendCost(req_wire);
        const Cycles send_cycles =
            proto->serializeCost(req_payload) + send_tcp;
        const double send_tcp_frac =
            static_cast<double>(send_tcp) /
            static_cast<double>(std::max<Cycles>(1, send_cycles));
        const double kipc = app->kernelIpc(csrv);
        app->chargeNetwork(caller_svc, static_cast<double>(send_cycles),
                           kipc);

        csrv.execute(send_cycles, kipc, [app, caller_server, tgt, req,
                                         parent_span, resp_payload,
                                         req_payload, req_wire, resp_wire,
                                         proto, attempt_no, resilient,
                                         route, as,
                                         send_tcp_frac](Tick send_busy) {
            if (*as->settled)
                return;
            req->networkTime += send_busy;
            req->tcpProcTime += static_cast<Tick>(
                send_tcp_frac * static_cast<double>(send_busy));
            as->callerNet += send_busy;

            // Partitioned deployment: a target homed on another shard
            // is a different machine reachable only through the engine
            // mailbox — hand the attempt to the cross-shard leg. Every
            // path below this point (instance selection, delivery,
            // reply) then runs on the target's home shard.
            if (app->partitioned_ &&
                tgt->homeShard() != app->ctx_.shard()) {
                app->remoteAttempt(caller_server, as, *tgt, req,
                                   parent_span, req_payload, resp_payload,
                                   req_wire, resp_wire, attempt_no, route);
                return;
            }

            Instance *ti;
            if (route.byKey) {
                // Keyed mode: the call is addressed to the key's
                // serving instance — the ring owner, or with
                // replication the group leader / read-preference pick.
                // Unservable keys fail fast with a typed status
                // (Unreachable, QuorumLost, StaleRead) regardless of
                // policy; the client retry loop treats all three as
                // retryable.
                RpcStatus key_status = RpcStatus::Ok;
                ti = tgt->resolveKeyInstance(route, app->ctx_.now(),
                                             key_status);
                if (!ti) {
                    if (key_status == RpcStatus::QuorumLost &&
                        app->rpcQuorumLost_)
                        app->rpcQuorumLost_->inc();
                    else if (key_status == RpcStatus::StaleRead &&
                             app->rpcStaleRejects_)
                        app->rpcStaleRejects_->inc();
                    app->settleAttempt(*as, key_status);
                    return;
                }
            } else if (resilient) {
                ti = tgt->trySelectInstance(*req);
                if (!ti) {
                    // Outage: nothing active to route to. Fail fast on
                    // the caller instead of aborting the simulation.
                    app->settleAttempt(*as, RpcStatus::Unreachable);
                    return;
                }
            } else {
                ti = &tgt->selectInstance(*req);
            }
            if (app->crashTracking_) {
                as->target = ti;
                as->registered = true;
                app->registerAttempt(*ti, as.get());
            }
            const unsigned callee_server = ti->server().id();
            const bool fpga = app->config_.fpga.enabled;
            const Tick fpga_lat =
                fpga ? app->config_.fpga.pipelineLatency : 0;

            // Reply continuation: runs on the callee once the handler
            // (or the drop/refusal path) finishes. Error replies still
            // traverse the wire — a refusal is a message too.
            auto respond = [app, caller_server, callee_server, tgt, ti,
                            req, resp_payload, resp_wire, proto,
                            fpga_lat, as](std::shared_ptr<HandlerCtx> ctx,
                                          RpcStatus status) {
                const bool f = app->config_.fpga.enabled;
                const Cycles reply_tcp =
                    f ? app->config_.fpga.hostSendCycles
                      : app->config_.tcp.sendCost(resp_wire);
                const Cycles reply_cycles =
                    proto->serializeCost(resp_payload) + reply_tcp;
                const double reply_tcp_frac =
                    static_cast<double>(reply_tcp) /
                    static_cast<double>(
                        std::max<Cycles>(1, reply_cycles));
                const double kipc_t = app->kernelIpc(ti->server());
                app->chargeNetwork(tgt, static_cast<double>(reply_cycles),
                                   kipc_t);
                ti->server().execute(reply_cycles, kipc_t,
                                     [app, caller_server, callee_server,
                                      req, resp_payload, resp_wire, proto,
                                      fpga_lat, ctx, reply_tcp_frac, as,
                                      status](Tick reply_busy) {
                    req->networkTime += reply_busy;
                    req->tcpProcTime += static_cast<Tick>(
                        reply_tcp_frac * static_cast<double>(reply_busy));
                    if (ctx) {
                        ctx->span.networkTime += reply_busy;
                        ctx->span.end = app->ctx_.now();
                        const Tick dur = ctx->span.duration();
                        Microservice &svc = ctx->inst->svc();
                        if (status == RpcStatus::Ok) {
                            svc.mutableLatency().record(dur);
                            svc.latencyWindow().record(app->ctx_.now(),
                                                       dur);
                            ++ctx->inst->served_;
                            if (app->obsTap_)
                                app->obsTap_->onTierLatency(svc, dur);
                        } else {
                            ++ctx->inst->failed_;
                        }
                        if (app->config_.tracing)
                            app->collector_.collect(ctx->span);
                    }
                    app->network_.send(callee_server, caller_server,
                                       resp_wire,
                                       [app, caller_server, req,
                                        resp_payload, resp_wire, proto,
                                        fpga_lat, as,
                                        status](Tick queueing_tx,
                                                Tick prop) {
                        auto finish = [app, caller_server, req,
                                       resp_payload, resp_wire, proto,
                                       queueing_tx, prop, fpga_lat, as,
                                       status]() {
                            if (*as->settled)
                                return; // late reply; caller moved on
                            req->networkTime += queueing_tx + fpga_lat;
                            req->tcpProcTime += fpga_lat;
                            req->wireTime += prop;
                            as->callerNet += queueing_tx + fpga_lat;
                            cpu::Server &csrv2 =
                                app->cluster_.server(caller_server);
                            const bool f2 = app->config_.fpga.enabled;
                            const Cycles recv_tcp =
                                f2 ? app->config_.fpga.hostRecvCycles
                                   : app->config_.tcp.recvCost(resp_wire);
                            const Cycles recv_cycles =
                                proto->deserializeCost(resp_payload) +
                                recv_tcp;
                            const double recv_tcp_frac =
                                static_cast<double>(recv_tcp) /
                                static_cast<double>(
                                    std::max<Cycles>(1, recv_cycles));
                            csrv2.execute(recv_cycles,
                                          app->kernelIpc(csrv2),
                                          [app, req, recv_tcp_frac, as,
                                           status](Tick recv_busy) {
                                if (*as->settled)
                                    return;
                                req->networkTime += recv_busy;
                                req->tcpProcTime += static_cast<Tick>(
                                    recv_tcp_frac *
                                    static_cast<double>(recv_busy));
                                as->callerNet += recv_busy;
                                app->settleAttempt(*as, status);
                            });
                        };
                        if (fpga_lat > 0)
                            app->ctx_.schedule(fpga_lat, finish);
                        else
                            finish();
                    });
                });
            };

            app->network_.send(
                caller_server, callee_server, req_wire,
                [app, tgt, ti, req, parent_span, req_payload, req_wire,
                 fpga_lat, proto, attempt_no, as,
                 respond = std::move(respond)](Tick queueing_tx,
                                               Tick prop) mutable {
                auto deliver = [app, tgt, ti, req, parent_span,
                                req_payload, req_wire, queueing_tx,
                                prop, fpga_lat, proto, attempt_no, as,
                                respond = std::move(respond)]() mutable {
                    if (*as->settled)
                        return; // caller gave up while we were in flight
                    req->networkTime += queueing_tx + fpga_lat;
                    req->tcpProcTime += fpga_lat;
                    req->wireTime += prop;
                    as->callerNet += queueing_tx + fpga_lat;
                    const bool f = app->config_.fpga.enabled;
                    const Cycles rr_tcp =
                        f ? app->config_.fpga.hostRecvCycles
                          : app->config_.tcp.recvCost(req_wire);
                    const Cycles recv_cycles =
                        proto->deserializeCost(req_payload) + rr_tcp;
                    const double rr_tcp_frac =
                        static_cast<double>(rr_tcp) /
                        static_cast<double>(
                            std::max<Cycles>(1, recv_cycles));
                    const double kipc_t = app->kernelIpc(ti->server());
                    app->chargeNetwork(
                        tgt, static_cast<double>(recv_cycles), kipc_t);
                    ti->server().execute(
                        recv_cycles, kipc_t,
                        [app, ti, req, parent_span, rr_tcp_frac,
                         attempt_no, as,
                         respond = std::move(respond)](
                            Tick recv_busy) mutable {
                        req->networkTime += recv_busy;
                        req->tcpProcTime += static_cast<Tick>(
                            rr_tcp_frac * static_cast<double>(recv_busy));
                        app->deliverToInstance(*ti, req, parent_span,
                                               recv_busy, attempt_no,
                                               as->settled,
                                               std::move(respond));
                    });
                };
                if (fpga_lat > 0)
                    app->ctx_.schedule(fpga_lat, std::move(deliver));
                else
                    deliver();
            });
        });
    });

    if (as->ticket != rpc::ConnectionPool::kGrantedImmediately &&
        pol->acquireTimeout > 0 && !*as->settled) {
        // Parked behind a saturated HTTP/1.1 pool: give up after the
        // configured wait instead of parking forever (Fig 17B's hang).
        as->acquireEv = ctx_.schedule(pol->acquireTimeout, [app, as]() {
            if (as->poolAcquired || *as->settled)
                return;
            app->rpcPoolTimeouts_->inc();
            app->settleAttempt(*as, RpcStatus::PoolTimeout);
        });
    }
}

void
App::remoteAttempt(unsigned caller_server, std::shared_ptr<AttemptState> as,
                   Microservice &target, RequestPtr req,
                   trace::SpanId parent_span, Bytes req_payload,
                   Bytes resp_payload, Bytes req_wire, Bytes resp_wire,
                   unsigned attempt_no, const data::RouteHint &route)
{
    App *app = this;
    const unsigned home = target.homeShard();

    // Forward leg: the caller's NIC pays serialization/queueing here;
    // the wire pays the inter-shard latency the engine lookahead is
    // derived from, so the delivery delay below is always >= lookahead.
    const std::pair<Tick, Tick> fwd =
        network_.crossShardDelay(caller_server, req_wire);
    req->networkTime += fwd.first;
    req->wireTime += fwd.second;
    as->callerNet += fwd.first;

    RemoteCall call;
    call.srcShard = ctx_.shard();
    call.tier = target.orderIndex();
    call.requestId = req->id;
    call.queryType = req->queryType;
    call.userId = req->userId;
    call.deadline = req->deadline;
    call.dataKey = route.key;
    call.traceId = req->traceId;
    call.parentSpan = parent_span;
    call.attemptNo = attempt_no;
    call.reqPayload = req_payload;
    call.respPayload = resp_payload;
    call.reqWire = req_wire;
    call.respWire = resp_wire;
    call.routeByKey = route.byKey;
    call.routeIsWrite = route.write;
    call.routeStoreAccess = route.storeAccess;

    const rpc::ProtocolModel *proto = &target.def().protocol;

    // Runs back on this shard when the home shard posts the delta.
    auto reply = [app, caller_server, req, resp_payload, resp_wire, proto,
                  as](const RemoteDelta &d) {
        if (*as->settled)
            return; // late reply; the caller's timeout already won
        req->networkTime += d.networkTime + d.replyQueueing;
        req->tcpProcTime += d.tcpProcTime;
        req->wireTime += d.wireTime;
        req->appTime += d.appTime;
        req->queueTime += d.queueTime;
        req->retries += d.retries;
        if (d.dropped)
            req->dropped = true;
        as->callerNet += d.replyQueueing;
        cpu::Server &csrv = app->cluster_.server(caller_server);
        const Cycles recv_tcp = app->config_.tcp.recvCost(resp_wire);
        const Cycles recv_cycles =
            proto->deserializeCost(resp_payload) + recv_tcp;
        const double recv_tcp_frac =
            static_cast<double>(recv_tcp) /
            static_cast<double>(std::max<Cycles>(1, recv_cycles));
        const std::uint8_t remote_hit = d.remoteHit;
        const RpcStatus status = d.status;
        csrv.execute(recv_cycles, app->kernelIpc(csrv),
                     [app, req, recv_tcp_frac, remote_hit, as,
                      status](Tick recv_busy) {
            if (*as->settled)
                return;
            req->networkTime += recv_busy;
            req->tcpProcTime += static_cast<Tick>(
                recv_tcp_frac * static_cast<double>(recv_busy));
            as->callerNet += recv_busy;
            // Published in the same event that settles the attempt:
            // settleAttempt unwinds synchronously into the issuing
            // stage's continuation, so a concurrent sibling's delta
            // cannot overwrite the outcome before it is read.
            if (remote_hit)
                req->remoteHit = remote_hit;
            app->settleAttempt(*as, status);
        });
    };

    App *peer = peerApps_[home];
    ctx_.postToShard(home, fwd.first + fwd.second,
                     [peer, call, reply = std::move(reply)]() {
        peer->serveRemote(call, reply);
    });
}

void
App::serveRemote(const RemoteCall &call,
                 std::function<void(const RemoteDelta &)> done)
{
    App *app = this;
    if (call.tier >= serviceOrder_.size())
        fatal("serveRemote: tier index out of range");
    Microservice *tgt = serviceOrder_[call.tier];

    // Shard-local twin of the caller's request: identity copied,
    // accounting zeroed — this shard accumulates its own delta and the
    // caller merges it, so nothing is double counted.
    auto rreq = std::make_shared<Request>();
    rreq->id = call.requestId;
    rreq->queryType = call.queryType;
    rreq->userId = call.userId;
    rreq->deadline = call.deadline;
    rreq->dataKey = call.dataKey;
    rreq->traceId = call.traceId;

    data::RouteHint route;
    route.key = call.dataKey;
    route.byKey = call.routeByKey;
    route.write = call.routeIsWrite;

    // The keyed store access the issuing stage could not perform
    // locally: done here, on the shard that owns the store, with the
    // outcome shipped back in the delta.
    std::uint8_t remote_hit = 0;
    if (call.routeStoreAccess)
        remote_hit = tgt->keyedAccess(call.dataKey, ctx_.now(),
                                      call.routeIsWrite)
                         ? 2
                         : 1;

    Instance *ti = nullptr;
    RpcStatus key_status = RpcStatus::Ok;
    if (route.byKey)
        ti = tgt->resolveKeyInstance(route, ctx_.now(), key_status);
    else
        ti = &tgt->selectInstance(*rreq);
    if (!ti) {
        // Unservable key (downed ring owner). Partition mode rejects
        // fault schedules so this is defensive, but reply rather than
        // abort: the typed status travels back like any other outcome.
        RemoteDelta d;
        d.remoteHit = remote_hit;
        d.status = key_status;
        ctx_.postToShard(call.srcShard, network_.config().wireLatency,
                         [done = std::move(done), d]() { done(d); });
        return;
    }

    const unsigned callee_server = ti->server().id();
    const rpc::ProtocolModel *proto = &tgt->def().protocol;

    // Reply continuation: the mirror of the local path's `respond`,
    // except the last leg is a marshalled delta through the mailbox
    // instead of a network_.send back to the caller.
    auto respond = [app, tgt, ti, rreq, callee_server, call, proto,
                    remote_hit, done = std::move(done)](
                       std::shared_ptr<HandlerCtx> ctx, RpcStatus status) {
        const Cycles reply_tcp = app->config_.tcp.sendCost(call.respWire);
        const Cycles reply_cycles =
            proto->serializeCost(call.respPayload) + reply_tcp;
        const double reply_tcp_frac =
            static_cast<double>(reply_tcp) /
            static_cast<double>(std::max<Cycles>(1, reply_cycles));
        const double kipc_t = app->kernelIpc(ti->server());
        app->chargeNetwork(tgt, static_cast<double>(reply_cycles), kipc_t);
        ti->server().execute(reply_cycles, kipc_t,
                             [app, ti, rreq, callee_server, call,
                              reply_tcp_frac, remote_hit, ctx, status,
                              done](Tick reply_busy) {
            rreq->networkTime += reply_busy;
            rreq->tcpProcTime += static_cast<Tick>(
                reply_tcp_frac * static_cast<double>(reply_busy));
            if (ctx) {
                ctx->span.networkTime += reply_busy;
                ctx->span.end = app->ctx_.now();
                const Tick dur = ctx->span.duration();
                Microservice &svc = ctx->inst->svc();
                if (status == RpcStatus::Ok) {
                    svc.mutableLatency().record(dur);
                    svc.latencyWindow().record(app->ctx_.now(), dur);
                    ++ctx->inst->served_;
                    if (app->obsTap_)
                        app->obsTap_->onTierLatency(svc, dur);
                } else {
                    ++ctx->inst->failed_;
                }
                if (app->config_.tracing)
                    app->collector_.collect(ctx->span);
            }
            // Reply leg: this shard's NIC pays the tx queueing, the
            // wire pays the inter-shard latency — so the post delay is
            // always >= the engine lookahead.
            const std::pair<Tick, Tick> rep =
                app->network_.crossShardDelay(callee_server,
                                              call.respWire);
            RemoteDelta d;
            d.networkTime = rreq->networkTime;
            d.tcpProcTime = rreq->tcpProcTime;
            d.wireTime = rreq->wireTime + rep.second;
            d.appTime = rreq->appTime;
            d.queueTime = rreq->queueTime;
            d.replyQueueing = rep.first;
            d.retries = rreq->retries;
            d.remoteHit = remote_hit;
            d.dropped = rreq->dropped;
            d.status = status;
            app->ctx_.postToShard(call.srcShard, rep.first + rep.second,
                                  [done, d]() { done(d); });
        });
    };

    // Receive-side kernel work for the marshalled message, charged to
    // the callee exactly as on the local path.
    const Cycles rr_tcp = config_.tcp.recvCost(call.reqWire);
    const Cycles recv_cycles =
        proto->deserializeCost(call.reqPayload) + rr_tcp;
    const double rr_tcp_frac =
        static_cast<double>(rr_tcp) /
        static_cast<double>(std::max<Cycles>(1, recv_cycles));
    const double kipc_t = kernelIpc(ti->server());
    chargeNetwork(tgt, static_cast<double>(recv_cycles), kipc_t);
    ti->server().execute(recv_cycles, kipc_t,
                         [app, ti, rreq, call, rr_tcp_frac,
                          respond = std::move(respond)](
                             Tick recv_busy) mutable {
        rreq->networkTime += recv_busy;
        rreq->tcpProcTime += static_cast<Tick>(
            rr_tcp_frac * static_cast<double>(recv_busy));
        app->deliverToInstance(*ti, rreq, call.parentSpan, recv_busy,
                               call.attemptNo, nullptr,
                               std::move(respond));
    });
}

void
App::deliverToInstance(
    Instance &inst, RequestPtr req, trace::SpanId parent_span,
    Tick pre_network, unsigned attempt_no, std::shared_ptr<bool> abandoned,
    std::function<void(std::shared_ptr<HandlerCtx>, RpcStatus)> respond)
{
    if (abandoned && *abandoned)
        return; // caller settled while the request was on the wire

    // Injected transient errors fail the request at arrival: the
    // server spends reply-path cycles sending the error back, which is
    // what a process returning 5xx costs.
    if (faultHook_ && faultHook_->shouldFailRequest(inst.svc())) {
        ++inst.failed_;
        respond(nullptr, RpcStatus::Error);
        return;
    }

    // Deadline admission: never queue work whose caller chain has
    // already given up (deadline propagation).
    if (req->deadline && ctx_.now() >= req->deadline) {
        rpcDeadlineExceeded_->inc();
        ++inst.failed_;
        respond(nullptr, RpcStatus::DeadlineExceeded);
        return;
    }

    // Admission control (enableQos): the multi-class queue owns all
    // queue bounds, so the legacy shed/overflow checks below never run
    // while it is installed. Every refusal is a typed fast-reject on
    // the reply wire — the caller's breaker and retry budget see an
    // immediate error, not a timeout.
    if (inst.admission_) {
        const QosClass cls = qosClassOf(req->queryType);
        const auto ci = static_cast<std::size_t>(cls);
        switch (inst.admission_->offer(cls, ctx_.now())) {
        case AdmissionVerdict::Admit:
            break;
        case AdmissionVerdict::Throttled:
            admThrottled_[ci]->inc();
            ++inst.failed_;
            if (obsTap_)
                obsTap_->onAdmissionReject(inst.svc());
            respond(nullptr, RpcStatus::Throttled);
            return;
        case AdmissionVerdict::Shed:
            admShed_[ci]->inc();
            rpcShed_->inc();
            ++inst.failed_;
            if (obsTap_)
                obsTap_->onAdmissionReject(inst.svc());
            respond(nullptr, RpcStatus::Shed);
            return;
        case AdmissionVerdict::Overflow:
            admOverflow_[ci]->inc();
            ++inst.dropped_;
            if (obsTap_)
                obsTap_->onAdmissionReject(inst.svc());
            respond(nullptr, RpcStatus::Overflow);
            return;
        }
        admAdmitted_[ci]->inc();
        Instance::Arrival arrival;
        arrival.req = std::move(req);
        arrival.parentSpan = parent_span;
        arrival.enqueued = ctx_.now();
        arrival.preNetworkTime = pre_network;
        arrival.attempt =
            static_cast<std::uint8_t>(std::min(attempt_no, 255u));
        arrival.abandoned = std::move(abandoned);
        arrival.respondCtx = std::move(respond);
        inst.admission_->push(cls, std::move(arrival));
        maybeStartHandling(inst);
        return;
    }

    const rpc::ResiliencePolicy &pol = inst.svc().def().resilience;
    if (pol.shedQueueLength > 0 &&
        inst.queue_.size() >= pol.shedQueueLength) {
        // Load shedding: refuse early with a cheap, retryable error
        // instead of letting the queue grow to the overflow cliff.
        rpcShed_->inc();
        ++inst.failed_;
        respond(nullptr, RpcStatus::Shed);
        return;
    }

    if (inst.queue_.size() >= inst.svc().def().queueCapacity) {
        ++inst.dropped_;
        if (!pol.active()) {
            // Legacy queue overflow: mark the end-to-end request
            // dropped and unwind through the normal reply path.
            req->dropped = true;
            respond(nullptr, RpcStatus::Ok);
        } else {
            // Under a resilience policy, overflow is a retryable
            // per-attempt error rather than a silent request kill.
            respond(nullptr, RpcStatus::Overflow);
        }
        return;
    }
    Instance::Arrival arrival;
    arrival.req = std::move(req);
    arrival.parentSpan = parent_span;
    arrival.enqueued = ctx_.now();
    arrival.preNetworkTime = pre_network;
    arrival.attempt =
        static_cast<std::uint8_t>(std::min(attempt_no, 255u));
    arrival.abandoned = std::move(abandoned);
    arrival.respondCtx = std::move(respond);
    inst.queue_.push_back(std::move(arrival));
    maybeStartHandling(inst);
}

void
App::maybeStartHandling(Instance &inst)
{
    while (inst.freeThreads_ > 0) {
        Instance::Arrival a;
        QosClass cls = QosClass::UserFacing;
        if (inst.admission_) {
            // Weighted round robin across the class queues.
            if (!inst.admission_->pop(cls, a))
                break;
        } else {
            if (inst.queue_.empty())
                break;
            a = std::move(inst.queue_.front());
            inst.queue_.pop_front();
        }
        if (a.abandoned && *a.abandoned) {
            // The caller timed out while this sat in the queue; skip
            // it without burning a worker thread on dead work.
            rpcAbandonedArrivals_->inc();
            continue;
        }
        if (inst.admission_)
            admServed_[static_cast<std::size_t>(cls)]->inc();
        --inst.freeThreads_;

        auto ctx = std::make_shared<HandlerCtx>();
        ctx->inst = &inst;
        ctx->req = a.req;
        ctx->respond = std::move(a.respondCtx);
        ctx->span.traceId = a.req->traceId;
        ctx->span.spanId = ids_.nextSpan();
        ctx->span.parentSpanId = a.parentSpan;
        ctx->span.service = inst.svc().traceServiceId();
        ctx->span.instance = inst.index();
        ctx->span.queryType = a.req->queryType;
        ctx->span.attempt = a.attempt;
        ctx->span.qosClass = static_cast<std::uint8_t>(cls);
        // Arrival is timestamped before kernel receive processing.
        ctx->span.start = a.enqueued >= a.preNetworkTime
                              ? a.enqueued - a.preNetworkTime
                              : 0;
        ctx->span.queueTime = ctx_.now() - a.enqueued;
        ctx->span.networkTime = a.preNetworkTime;
        ctx->req->queueTime += ctx->span.queueTime;

        const std::uint64_t epoch = inst.crashEpoch_;
        runStage(ctx, 0, [this, ctx, epoch]() {
            Instance &done_inst = *ctx->inst;
            if (done_inst.crashEpoch_ != epoch) {
                // The instance crashed mid-handler: the process is
                // gone, no reply is ever sent. The caller was settled
                // by the crash path.
                return;
            }
            ++done_inst.freeThreads_;
            // The reply path does not hold a worker thread; pull the
            // next queued request in before responding.
            maybeStartHandling(done_inst);
            ctx->respond(ctx, ctx->span.statusEnum());
        });
    }
}

void
App::runStage(std::shared_ptr<HandlerCtx> ctx, std::size_t idx,
              std::function<void()> done)
{
    Microservice &svc = ctx->inst->svc();
    const auto &stages = svc.def().handler.stages;
    // Once a downstream dependency failed for good, abort the handler:
    // the remaining stages would compute on behalf of a request that is
    // already doomed, and the error must surface to the caller now.
    if (ctx->span.status != 0 || idx >= stages.size()) {
        done();
        return;
    }
    const Stage &st = stages[idx];
    auto next = [this, ctx, idx, done = std::move(done)]() mutable {
        runStage(ctx, idx + 1, std::move(done));
    };

    const QueryType &qt = queryTypes_[ctx->req->queryType];
    if (!st.onlyForTag.empty() && !qt.hasTag(st.onlyForTag)) {
        next();
        return;
    }
    if (st.probability < 1.0 && !rng_.bernoulli(st.probability)) {
        next();
        return;
    }

    switch (st.kind) {
      case Stage::Kind::Compute: {
        const auto &prof = svc.def().profile;
        const double cycles =
            std::max(0.0, st.computeCycles.sample(rng_)) * qt.computeScale;
        const double cpu_cycles = cycles * (1.0 - prof.ioBoundFraction);
        const double io_cycles = cycles - cpu_cycles;
        cpu::Server &server = ctx->inst->server();
        const double ipc = serviceIpc(svc, server);
        // I/O waits do not consume the core and do not stretch when
        // frequency drops: convert at the *nominal* frequency.
        const double nominal_ghz = server.model().nominalFreqMhz / 1000.0;
        const Tick io_ns = static_cast<Tick>(
            io_cycles / std::max(1e-9, ipc * nominal_ghz));
        chargeCompute(svc, cpu_cycles, ipc);
        server.execute(static_cast<Cycles>(cpu_cycles), ipc,
                       [this, ctx, io_ns,
                        next = std::move(next)](Tick busy) mutable {
            ctx->inst->cpuBusyTime_ += busy;
            auto fin = [ctx, busy, io_ns,
                        next = std::move(next)]() mutable {
                ctx->span.appTime += busy + io_ns;
                ctx->req->appTime += busy + io_ns;
                next();
            };
            if (io_ns > 0)
                ctx_.schedule(io_ns, std::move(fin));
            else
                fin();
        });
        return;
      }
      case Stage::Kind::Call: {
        if (st.fanout == 0) {
            next();
            return;
        }
        Microservice *target = &service(st.target);
        const unsigned server_id = ctx->inst->server().id();
        const Tick call_start = ctx_.now();
        if (st.parallel) {
            auto remaining = std::make_shared<unsigned>(st.fanout);
            auto net_sum = std::make_shared<Tick>(0);
            auto joined_next =
                std::make_shared<std::function<void()>>(std::move(next));
            for (unsigned i = 0; i < st.fanout; ++i) {
                rpcCall(server_id, ctx->inst, *target, ctx->req,
                        ctx->span.spanId, st.requestBytes, st.responseBytes,
                        st.carriesMedia,
                        [this, ctx, remaining, net_sum, call_start,
                         joined_next](RpcStatus status, Tick wall,
                                      Tick caller_net) {
                    (void)wall;
                    // A parallel fanout fails if any branch fails;
                    // first failure wins the join status.
                    if (status != RpcStatus::Ok && ctx->span.status == 0)
                        ctx->span.status =
                            static_cast<std::uint8_t>(status);
                    *net_sum += caller_net;
                    if (--*remaining == 0) {
                        const Tick wall_total = ctx_.now() - call_start;
                        ctx->span.networkTime += *net_sum;
                        ctx->span.downstreamWait +=
                            wall_total > *net_sum ? wall_total - *net_sum
                                                  : 0;
                        (*joined_next)();
                    }
                });
            }
        } else {
            auto do_call =
                std::make_shared<std::function<void(unsigned)>>();
            auto next_shared =
                std::make_shared<std::function<void()>>(std::move(next));
            const Stage *stage = &st;
            *do_call = [this, ctx, stage, target, server_id, do_call,
                        next_shared](unsigned i) {
                if (i >= stage->fanout) {
                    (*next_shared)();
                    return;
                }
                rpcCall(server_id, ctx->inst, *target, ctx->req,
                        ctx->span.spanId, stage->requestBytes,
                        stage->responseBytes, stage->carriesMedia,
                        [ctx, stage, do_call, i](RpcStatus status, Tick wall,
                                                 Tick caller_net) {
                    ctx->span.networkTime += caller_net;
                    ctx->span.downstreamWait +=
                        wall > caller_net ? wall - caller_net : 0;
                    if (status != RpcStatus::Ok) {
                        if (ctx->span.status == 0)
                            ctx->span.status =
                                static_cast<std::uint8_t>(status);
                        // Skip the remaining sequential calls.
                        (*do_call)(stage->fanout);
                        return;
                    }
                    (*do_call)(i + 1);
                });
            };
            (*do_call)(0);
        }
        return;
      }
      case Stage::Kind::Delay: {
        const Tick d = static_cast<Tick>(
            std::max(0.0, st.delayNs.sample(rng_)));
        const bool is_net = st.delayIsNetwork;
        ctx_.schedule(d, [ctx, d, is_net, next = std::move(next)]() mutable {
            if (is_net) {
                ctx->span.networkTime += d;
                ctx->req->networkTime += d;
            } else {
                ctx->span.appTime += d;
                ctx->req->appTime += d;
            }
            next();
        });
        return;
      }
      case Stage::Kind::Cache: {
        Microservice *cache_tier = &service(st.target);
        const unsigned server_id = ctx->inst->server().id();
        // Keyed mode: draw the accessed key and let hit/miss emerge
        // from the owning shard's bounded store. Legacy mode keeps
        // the fixed-probability coin flip — the same single RNG draw
        // at the same point in the event stream, so configurations
        // without a keyspace stay bit-identical.
        bool hit;
        Tick quorum_delay = 0;
        data::RouteHint route;
        // Partitioned worlds: a keyed store homed on another shard
        // cannot be touched from here — the access rides the RPC to
        // the home shard (route.storeAccess) and the outcome returns
        // in req->remoteHit, counted in the continuation below.
        bool remote_keyed = false;
        if (st.keyed && keyspace_) {
            const std::uint64_t key =
                keyspace_->sampleKey(rng_, ctx_.now());
            ctx->req->dataKey = key;
            const bool is_write = qt.hasTag(data::kWriteTag);
            route = {key, true, is_write};
            remote_keyed =
                partitioned_ && cache_tier->homeShard() != ctx_.shard();
            if (remote_keyed) {
                hit = false;
            } else if (cache_tier->replicated()) {
                if (is_write && replicationConfig_.txnEnabled()) {
                    // Multi-partition transaction: this write touches
                    // txnKeys keys; distinct groups go through 2PC.
                    // Extra key draws happen only on this opt-in path.
                    std::vector<std::uint64_t> keys{key};
                    for (unsigned k = 1; k < replicationConfig_.txnKeys;
                         ++k)
                        keys.push_back(
                            keyspace_->sampleKey(rng_, ctx_.now()));
                    if (ctx->span.dataMisses != 255)
                        ++ctx->span.dataMisses;
                    runTxnStage(ctx, &st, cache_tier, std::move(keys),
                                std::move(next));
                    return;
                }
                const Microservice::ReplicatedAccess acc =
                    cache_tier->replicatedAccess(key, ctx_.now(),
                                                 is_write);
                // A typed reject leaves the store untouched; the RPC
                // below fails with the same status at attempt time and
                // degrades to a miss (db fallthrough keeps serving).
                hit = acc.hit;
                quorum_delay = acc.quorumDelay;
            } else {
                hit = cache_tier->keyedAccess(key, ctx_.now(), is_write);
            }
            if (!remote_keyed) {
                if (hit) {
                    if (ctx->span.dataHits != 255)
                        ++ctx->span.dataHits;
                } else if (ctx->span.dataMisses != 255) {
                    ++ctx->span.dataMisses;
                }
            }
        } else {
            hit = rng_.bernoulli(st.hitRatio);
        }
        const Stage *stage = &st;
        auto next_shared =
            std::make_shared<std::function<void()>>(std::move(next));
        // Only the cache-tier hop carries the store access; the db
        // fallthrough routes by the same key but touches no store.
        data::RouteHint cache_route = route;
        cache_route.storeAccess = remote_keyed;
        rpcCall(server_id, ctx->inst, *cache_tier, ctx->req,
                ctx->span.spanId, st.requestBytes, st.responseBytes,
                st.carriesMedia,
                [this, ctx, stage, server_id, hit, remote_keyed,
                 quorum_delay, route,
                 next_shared](RpcStatus status, Tick wall, Tick caller_net) {
            ctx->span.networkTime += caller_net;
            ctx->span.downstreamWait +=
                wall > caller_net ? wall - caller_net : 0;
            auto cont = [this, ctx, stage, server_id, hit, remote_keyed,
                         route, next_shared, status]() {
                bool h = hit;
                if (remote_keyed) {
                    // The home shard's outcome, published in the same
                    // event that settled the attempt. A failed RPC
                    // counts as a miss: the reply (and the outcome)
                    // never arrived.
                    h = status == RpcStatus::Ok &&
                        ctx->req->remoteHit == 2;
                    if (h) {
                        if (ctx->span.dataHits != 255)
                            ++ctx->span.dataHits;
                    } else if (ctx->span.dataMisses != 255) {
                        ++ctx->span.dataMisses;
                    }
                }
                // A failed cache lookup degrades to a miss: fall
                // through to the backing store when one exists
                // (cache-aside pattern).
                const bool effective_hit =
                    h && status == RpcStatus::Ok;
                if (effective_hit || stage->dbTarget.empty()) {
                    if (status != RpcStatus::Ok &&
                        stage->dbTarget.empty() && ctx->span.status == 0)
                        ctx->span.status =
                            static_cast<std::uint8_t>(status);
                    (*next_shared)();
                    return;
                }
                Microservice *db = &service(stage->dbTarget);
                // The backing store shards by the same key when it is
                // ring-managed, so hot keys hammer one DB shard too.
                const data::RouteHint db_route =
                    db->keyedRouting() ? route : data::RouteHint{};
                rpcCall(server_id, ctx->inst, *db, ctx->req,
                        ctx->span.spanId, stage->requestBytes,
                        stage->responseBytes, stage->carriesMedia,
                        [ctx, next_shared](RpcStatus status2, Tick wall2,
                                           Tick caller_net2) {
                    ctx->span.networkTime += caller_net2;
                    ctx->span.downstreamWait += wall2 > caller_net2
                                                    ? wall2 - caller_net2
                                                    : 0;
                    if (status2 != RpcStatus::Ok &&
                        ctx->span.status == 0)
                        ctx->span.status =
                            static_cast<std::uint8_t>(status2);
                    (*next_shared)();
                },
                        db_route);
            };
            if (quorum_delay > 0 && status == RpcStatus::Ok) {
                // Quorum write: the handler blocks until the W-th ack
                // — the (W-1)-th fastest follower's apply lag.
                ctx->span.downstreamWait += quorum_delay;
                ctx_.schedule(quorum_delay, std::move(cont));
            } else {
                cont();
            }
        },
                cache_route);
        return;
      }
    }
    panic("unhandled stage kind");
}

void
App::runTxnStage(std::shared_ptr<HandlerCtx> ctx, const Stage *stage,
                 Microservice *cache_tier, std::vector<std::uint64_t> keys,
                 std::function<void()> next)
{
    if (rpcTxnStarted_)
        rpcTxnStarted_->inc();
    const unsigned server_id = ctx->inst->server().id();

    // One prepare per distinct replica group, addressed by the first
    // key that mapped there. A transaction whose keys all hash to one
    // group degenerates to single-partition 2PC: one prepare, one
    // commit, no cross-group coordination cost.
    std::vector<std::uint64_t> group_keys;
    std::vector<unsigned> groups;
    for (std::uint64_t k : keys) {
        const unsigned g = cache_tier->shardIndexForKey(k);
        bool seen = false;
        for (unsigned have : groups)
            if (have == g) {
                seen = true;
                break;
            }
        if (!seen) {
            groups.push_back(g);
            group_keys.push_back(k);
        }
    }

    struct TxnState
    {
        unsigned remaining = 0;
        bool failed = false;
        bool settled = false;
    };
    auto st = std::make_shared<TxnState>();
    st->remaining = static_cast<unsigned>(group_keys.size());
    auto next_shared =
        std::make_shared<std::function<void()>>(std::move(next));

    App *app = this;
    Microservice *tier = cache_tier;
    const Stage *stg = stage;
    const std::uint64_t primary = keys.front();

    // The coordinator's decision point: fired once, by the last
    // prepare ack or by the abort timer — whichever comes first.
    auto settle = std::make_shared<std::function<void(bool)>>();
    *settle = [app, ctx, tier, stg, server_id, st, group_keys, primary,
               next_shared](bool ok) {
        if (st->settled)
            return;
        st->settled = true;
        auto abort_txn = [&]() {
            if (app->rpcTxnAborts_)
                app->rpcTxnAborts_->inc();
            tier->noteTxnAbort();
            if (ctx->span.status == 0)
                ctx->span.status =
                    static_cast<std::uint8_t>(RpcStatus::TxnAborted);
            (*next_shared)();
        };
        if (!ok) {
            abort_txn();
            return;
        }
        // Commit phase: apply every group's write. Quorum membership
        // may have shifted since the prepares acked (a leader crash in
        // the window), in which case the transaction still aborts.
        Tick delay = 0;
        bool commit_ok = true;
        for (std::uint64_t k : group_keys) {
            const Microservice::ReplicatedAccess acc =
                tier->replicatedAccess(k, app->ctx_.now(), true);
            if (acc.status != trace::SpanStatus::Ok) {
                commit_ok = false;
                break;
            }
            delay = std::max(delay, acc.quorumDelay);
        }
        if (!commit_ok) {
            abort_txn();
            return;
        }
        if (app->rpcTxnCommits_)
            app->rpcTxnCommits_->inc();
        auto after = [app, ctx, stg, server_id, primary, next_shared]() {
            if (stg->dbTarget.empty()) {
                (*next_shared)();
                return;
            }
            // Write-through: the transaction's primary key carries the
            // backing-store update, same as the single-key miss path.
            Microservice *db = &app->service(stg->dbTarget);
            const data::RouteHint db_route =
                db->keyedRouting()
                    ? data::RouteHint{primary, true, true}
                    : data::RouteHint{};
            app->rpcCall(server_id, ctx->inst, *db, ctx->req,
                         ctx->span.spanId, stg->requestBytes,
                         stg->responseBytes, stg->carriesMedia,
                         [ctx, next_shared](RpcStatus status2, Tick wall2,
                                            Tick caller_net2) {
                ctx->span.networkTime += caller_net2;
                ctx->span.downstreamWait += wall2 > caller_net2
                                                ? wall2 - caller_net2
                                                : 0;
                if (status2 != RpcStatus::Ok && ctx->span.status == 0)
                    ctx->span.status =
                        static_cast<std::uint8_t>(status2);
                (*next_shared)();
            },
                         db_route);
        };
        if (delay > 0) {
            // The coordinator blocks until the slowest group's W-th
            // ack has landed.
            ctx->span.downstreamWait += delay;
            app->ctx_.schedule(delay, std::move(after));
        } else {
            after();
        }
    };

    // Coordinator deadline on the prepare phase: a late ack finds the
    // transaction already settled (the guard makes the timer a no-op
    // once a decision is taken).
    ctx_.schedule(replicationConfig_.txnPrepareTimeout,
                  [settle]() { (*settle)(false); });

    for (std::size_t i = 0; i < group_keys.size(); ++i) {
        const data::RouteHint prep_route{group_keys[i], true, true};
        rpcCall(server_id, ctx->inst, *cache_tier, ctx->req,
                ctx->span.spanId, stg->requestBytes, stg->responseBytes,
                stg->carriesMedia,
                [ctx, st, settle](RpcStatus status, Tick wall,
                                  Tick caller_net) {
            ctx->span.networkTime += caller_net;
            ctx->span.downstreamWait +=
                wall > caller_net ? wall - caller_net : 0;
            if (status != RpcStatus::Ok)
                st->failed = true;
            if (--st->remaining == 0)
                (*settle)(!st->failed);
        },
                prep_route);
    }
}

void
App::inject(unsigned query_type, std::uint64_t user_id, CompletionFn done)
{
    if (!clientServer_)
        fatal("App::inject without a client server");
    if (queryTypes_.empty())
        addQueryType(QueryType{});
    if (query_type >= queryTypes_.size())
        fatal(strCat("unknown query type ", query_type));

    auto req = std::make_shared<Request>();
    req->id = nextRequestId_++;
    req->queryType = query_type;
    req->userId = user_id;
    req->injectTime = ctx_.now();
    if (config_.requestDeadline > 0)
        req->deadline = ctx_.now() + config_.requestDeadline;
    req->traceId = config_.tracing ? ids_.nextTrace() : 0;
    injected_->inc();

    const trace::SpanId client_span_id = ids_.nextSpan();

    rpcCall(clientServer_->id(), nullptr, service(entry_), req,
            client_span_id, config_.clientRequestBytes,
            config_.clientResponseBytes, /*carries_media=*/true,
            [this, req, client_span_id,
             done = std::move(done)](RpcStatus status, Tick wall,
                                     Tick caller_net) {
        (void)wall;
        req->completeTime = ctx_.now();
        if (status != RpcStatus::Ok) {
            // The entry RPC failed after all client-side resilience was
            // exhausted: a user-visible error, distinct from a silent
            // legacy queue drop.
            req->failStatus = static_cast<std::uint8_t>(status);
            requestsFailed_->inc();
        } else if (req->dropped) {
            droppedRequests_->inc();
        } else {
            completed_->inc();
            const Tick lat = req->latency();
            e2eLatency_.record(lat);
            e2eByQuery_[req->queryType]->record(lat);
            if (lat <= config_.qosLatency)
                completedInQos_->inc();
            totalNetworkTime_ += static_cast<double>(req->networkTime);
            totalAppTime_ += static_cast<double>(req->appTime);
        }
        if (obsTap_)
            obsTap_->onEndToEnd(req->latency(),
                                status == RpcStatus::Ok && !req->dropped);
        if (config_.tracing) {
            trace::Span client_span;
            client_span.traceId = req->traceId;
            client_span.spanId = client_span_id;
            client_span.parentSpanId = trace::kNoParent;
            client_span.service = clientServiceId_;
            client_span.queryType = req->queryType;
            client_span.start = req->injectTime;
            client_span.end = req->completeTime;
            client_span.networkTime = caller_net;
            client_span.status = static_cast<std::uint8_t>(status);
            client_span.attempt = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(req->retries + 1, 255));
            collector_.collect(client_span);
        }
        if (done)
            done(*req);
    });
}

const Histogram &
App::endToEndLatencyFor(unsigned query_type) const
{
    if (query_type >= e2eByQuery_.size())
        fatal(strCat("unknown query type ", query_type));
    return *e2eByQuery_[query_type];
}

double
App::meanNetworkTimePerRequest() const
{
    const std::uint64_t n = completed();
    return n ? totalNetworkTime_ / static_cast<double>(n) : 0.0;
}

double
App::meanAppTimePerRequest() const
{
    const std::uint64_t n = completed();
    return n ? totalAppTime_ / static_cast<double>(n) : 0.0;
}

void
App::statReset()
{
    e2eLatency_.reset();
    for (auto &h : e2eByQuery_)
        h->reset();
    metrics_.resetAll();
    totalNetworkTime_ = 0.0;
    totalAppTime_ = 0.0;
    traceStore_.clear();
    for (Microservice *svc : serviceOrder_) {
        svc->mutableLatency().reset();
        for (const auto &inst : svc->instances()) {
            inst->served_ = 0;
            inst->dropped_ = 0;
            inst->failed_ = 0;
            inst->cpuBusyTime_ = 0;
        }
    }
    cluster_.statResetAll();
}

} // namespace uqsim::service
