#include "service/admission.hh"

#include <algorithm>

namespace uqsim::service {

const char *
qosClassName(QosClass c)
{
    switch (c) {
    case QosClass::UserFacing:
        return "user-facing";
    case QosClass::Batch:
        return "batch";
    case QosClass::BestEffort:
        return "best-effort";
    }
    return "unknown";
}

bool
qosClassByName(const std::string &name, QosClass &out)
{
    if (name == "user-facing") {
        out = QosClass::UserFacing;
    } else if (name == "batch") {
        out = QosClass::Batch;
    } else if (name == "best-effort") {
        out = QosClass::BestEffort;
    } else {
        return false;
    }
    return true;
}

double
qosTokenReserve(const AdmissionPolicy &pol, QosClass c)
{
    // Fraction of the burst kept out of reach per class; user-facing
    // may drain the bucket completely.
    static constexpr std::array<double, kQosClassCount> kReserveFrac = {
        0.0, 0.25, 0.5};
    const double frac = kReserveFrac[static_cast<std::size_t>(c)];
    return 1.0 + frac * std::max(0.0, pol.burst - 1.0);
}

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : ratePerTick_(rate_per_sec / static_cast<double>(kTicksPerSec)),
      burst_(std::max(1.0, burst)),
      tokens_(burst_)
{
}

void
TokenBucket::refill(Tick now)
{
    if (now <= last_)
        return;
    tokens_ = std::min(
        burst_,
        tokens_ + ratePerTick_ * static_cast<double>(now - last_));
    last_ = now;
}

double
TokenBucket::available(Tick now)
{
    refill(now);
    return tokens_;
}

bool
TokenBucket::tryAcquire(Tick now, double reserve)
{
    refill(now);
    if (tokens_ < reserve)
        return false;
    tokens_ -= 1.0;
    return true;
}

void
TokenBucket::reset(Tick now)
{
    tokens_ = burst_;
    last_ = now;
}

} // namespace uqsim::service
