/**
 * @file
 * The end-to-end application runtime.
 *
 * An App owns a service graph (Microservice tiers), wires it to the
 * compute (cpu::Cluster) and network (net::Network) substrates, and
 * interprets handler programs per request: every RPC hop charges
 * serialization and kernel TCP cycles to the right server, traverses
 * the fabric, queues for worker threads, and records a tracing span.
 * End-to-end requests enter through inject() from a client server.
 *
 * This is the "core" of the reproduction: all end-to-end services in
 * src/apps are built as configurations of this runtime.
 */

#ifndef UQSIM_SERVICE_APP_HH
#define UQSIM_SERVICE_APP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/histogram.hh"
#include "core/metrics.hh"
#include "core/rng.hh"
#include "core/simulator.hh"
#include "core/types.hh"
#include "cpu/server.hh"
#include "net/network.hh"
#include "rpc/connection_pool.hh"
#include "rpc/protocol.hh"
#include "service/microservice.hh"
#include "service/request.hh"
#include "trace/analysis.hh"
#include "trace/collector.hh"

namespace uqsim::service {

struct HandlerCtx;

/** Completion callback for end-to-end requests. */
using CompletionFn = std::function<void(const Request &)>;

/**
 * End-to-end application: graph + runtime.
 */
class App
{
  public:
    /** Runtime-wide configuration. */
    struct Config
    {
        /** Application name for reporting. */
        std::string name = "app";

        /** Kernel TCP processing cost model. */
        net::TcpCostModel tcp = net::TcpCostModel::native();

        /** FPGA RPC offload (Fig 16); off by default. */
        net::FpgaOffloadModel fpga = net::FpgaOffloadModel::off();

        /** End-to-end tail-latency QoS target. */
        Tick qosLatency = 100 * kTicksPerMs;

        /** Collect distributed traces. */
        bool tracing = true;

        /**
         * Trace sampling: keep one in n traces (1 = keep all). The
         * decision is trace-coherent — a kept trace keeps every span.
         */
        std::uint64_t traceSampleEvery = 1;

        /** Ring capacity of the span store (spans). */
        std::size_t traceCapacity = trace::TraceStore::kDefaultCapacity;

        /** Client-to-frontend payloads. */
        Bytes clientRequestBytes = 1024;
        Bytes clientResponseBytes = 4096;
    };

    App(Simulator &sim, cpu::Cluster &cluster, net::Network &network,
        Config config, std::uint64_t seed);

    App(const App &) = delete;
    App &operator=(const App &) = delete;

    // -- Graph construction ---------------------------------------------

    /** Add a tier; name must be unique. */
    Microservice &addService(ServiceDef def);

    /** @return true if a tier with this name exists. */
    bool hasService(const std::string &name) const;

    /** Tier by name (fatal if missing). */
    Microservice &service(const std::string &name);
    const Microservice &service(const std::string &name) const;

    /** Tiers in insertion order. */
    const std::vector<Microservice *> &services() const
    {
        return serviceOrder_;
    }

    /** Set the entry tier user requests hit first. */
    void setEntry(const std::string &name);
    const std::string &entry() const { return entry_; }

    /** Register a query type; returns its index. */
    unsigned addQueryType(QueryType qt);
    const std::vector<QueryType> &queryTypes() const { return queryTypes_; }

    /** Place one more instance of @p service on @p server. */
    Instance &addInstance(const std::string &service, cpu::Server &server);

    /** The server end-user requests originate from. */
    void setClientServer(cpu::Server &server);

    /**
     * Check the graph: entry set, every call target exists, every
     * service has at least one instance, no service calls itself.
     * Fatal on violation.
     */
    void validate() const;

    /** Graphviz DOT rendering of the dependency graph (Figs 4-8). */
    std::string exportDot() const;

    // -- Request injection ------------------------------------------------

    /**
     * Inject one end-to-end request of @p query_type for @p user_id.
     * @p done (optional) fires on completion with the full accounting.
     */
    void inject(unsigned query_type, std::uint64_t user_id,
                CompletionFn done = {});

    // -- Configuration knobs ----------------------------------------------

    const Config &config() const { return config_; }

    /** Toggle the FPGA offload for subsequent messages. */
    void setFpga(const net::FpgaOffloadModel &fpga) { config_.fpga = fpga; }

    /** Change the QoS target. */
    void setQosLatency(Tick qos) { config_.qosLatency = qos; }

    // -- Results ----------------------------------------------------------

    /** End-to-end latency over completed (non-dropped) requests. */
    const Histogram &endToEndLatency() const { return e2eLatency_; }

    /** End-to-end latency for one query type. */
    const Histogram &endToEndLatencyFor(unsigned query_type) const;

    std::uint64_t injected() const { return injected_->value(); }
    std::uint64_t completed() const { return completed_->value(); }
    std::uint64_t completedWithinQos() const
    {
        return completedInQos_->value();
    }
    std::uint64_t droppedRequests() const
    {
        return droppedRequests_->value();
    }

    /** Aggregate network-processing work time per completed request. */
    double meanNetworkTimePerRequest() const;
    double meanAppTimePerRequest() const;

    trace::TraceStore &traceStore() { return traceStore_; }
    const trace::TraceStore &traceStore() const { return traceStore_; }
    trace::Collector &collector() { return collector_; }

    /** The app-wide metrics registry every subsystem reports through. */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    Simulator &sim() { return sim_; }
    cpu::Cluster &cluster() { return cluster_; }
    net::Network &network() { return network_; }
    Rng &rng() { return rng_; }

    /**
     * Reset all measurement state (latency histograms, counters,
     * traces, per-server utilization) - call after warmup.
     */
    void statReset();

  private:
    /** Per-(caller-instance, callee) connection pool key. */
    using PoolKey = std::pair<const void *, const Microservice *>;

    struct PoolKeyHash
    {
        std::size_t
        operator()(const PoolKey &k) const
        {
            return std::hash<const void *>{}(k.first) ^
                   (std::hash<const void *>{}(k.second) << 1);
        }
    };

    /** Effective kernel-code IPC on @p server (cached per model). */
    double kernelIpc(const cpu::Server &server);

    /** Per-service effective IPC on @p server (cached). */
    double serviceIpc(const Microservice &svc, const cpu::Server &server);

    rpc::ConnectionPool &poolFor(const void *caller,
                                 const Microservice &target);

    /**
     * Issue one RPC from @p caller_server to @p target.
     * @p done fires back on the caller with the RPC wall time.
     */
    void rpcCall(unsigned caller_server, Instance *caller_inst,
                 Microservice &target, RequestPtr req,
                 trace::SpanId parent_span, Bytes req_bytes,
                 Bytes resp_bytes, bool carries_media,
                 std::function<void(Tick wall, Tick caller_net)> done);

    /** Arrival at the chosen instance after receive processing. */
    void
    deliverToInstance(Instance &inst, RequestPtr req,
                      trace::SpanId parent_span, Tick pre_network,
                      std::function<void(std::shared_ptr<HandlerCtx>)>
                          respond);

    /** Start handling queued work if threads are available. */
    void maybeStartHandling(Instance &inst);

    /** Interpret stage @p idx of the handler program. */
    void runStage(std::shared_ptr<HandlerCtx> ctx, std::size_t idx,
                  std::function<void()> done);

    /** Charge a compute task's cycles to user/lib modes. */
    void chargeCompute(Microservice &svc, double cycles, double ipc);

    /** Charge a network task's cycles to kernel mode. */
    void chargeNetwork(Microservice *svc, double cycles, double ipc);

    Simulator &sim_;
    cpu::Cluster &cluster_;
    net::Network &network_;
    Config config_;
    Rng rng_;

    std::map<std::string, std::unique_ptr<Microservice>> services_;
    std::vector<Microservice *> serviceOrder_;
    std::string entry_;
    std::vector<QueryType> queryTypes_;
    cpu::Server *clientServer_ = nullptr;

    std::unordered_map<PoolKey, std::unique_ptr<rpc::ConnectionPool>,
                       PoolKeyHash>
        pools_;
    std::unordered_map<std::string, double> kernelIpcCache_;
    std::unordered_map<std::string, double> serviceIpcCache_;

    MetricsRegistry metrics_;
    trace::TraceStore traceStore_;
    trace::Collector collector_;
    trace::IdAllocator ids_;
    trace::ServiceId clientServiceId_ = trace::kNoService;

    Histogram e2eLatency_;
    std::vector<std::unique_ptr<Histogram>> e2eByQuery_;
    std::uint64_t nextRequestId_ = 0;
    /** Request accounting, owned by the metrics registry. */
    Counter *injected_ = nullptr;
    Counter *completed_ = nullptr;
    Counter *completedInQos_ = nullptr;
    Counter *droppedRequests_ = nullptr;
    /** Aggregate blocked-acquire count across all connection pools. */
    Counter *poolBlocked_ = nullptr;
    double totalNetworkTime_ = 0.0;
    double totalAppTime_ = 0.0;
};

} // namespace uqsim::service

#endif // UQSIM_SERVICE_APP_HH
