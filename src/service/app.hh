/**
 * @file
 * The end-to-end application runtime.
 *
 * An App owns a service graph (Microservice tiers), wires it to the
 * compute (cpu::Cluster) and network (net::Network) substrates, and
 * interprets handler programs per request: every RPC hop charges
 * serialization and kernel TCP cycles to the right server, traverses
 * the fabric, queues for worker threads, and records a tracing span.
 * End-to-end requests enter through inject() from a client server.
 *
 * This is the "core" of the reproduction: all end-to-end services in
 * src/apps are built as configurations of this runtime.
 */

#ifndef UQSIM_SERVICE_APP_HH
#define UQSIM_SERVICE_APP_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/histogram.hh"
#include "core/metrics.hh"
#include "core/rng.hh"
#include "core/sim_context.hh"
#include "core/types.hh"
#include "cpu/server.hh"
#include "data/config.hh"
#include "net/network.hh"
#include "replica/replication.hh"
#include "rpc/connection_pool.hh"
#include "rpc/protocol.hh"
#include "rpc/resilience.hh"
#include "service/microservice.hh"
#include "service/request.hh"
#include "trace/analysis.hh"
#include "trace/collector.hh"

namespace uqsim::service {

struct HandlerCtx;
struct AttemptState;

/** Completion callback for end-to-end requests. */
using CompletionFn = std::function<void(const Request &)>;

/** Outcome of one RPC (alias of the span status vocabulary). */
using RpcStatus = trace::SpanStatus;

/** Completion callback of one RPC as seen by the caller. */
using RpcDone = std::function<void(RpcStatus status, Tick wall,
                                   Tick caller_net)>;

/**
 * Interface the fault-injection engine implements to fail individual
 * request deliveries (transient per-request error rates). The hook is
 * consulted once per arrival at an instance; a true return converts
 * the delivery into an error response on the wire.
 */
class RequestFaultHook
{
  public:
    virtual ~RequestFaultHook() = default;

    /** @return true to fail this arrival at @p svc. */
    virtual bool shouldFailRequest(const Microservice &svc) = 0;
};

/**
 * Interface the observability layer (src/obs) implements to receive
 * per-request signals without the service layer depending on it.
 * Mirrors RequestFaultHook: while no tap is installed — the default —
 * the runtime never consults it, so the hot path carries exactly one
 * null check per site and the execution digest is untouched (the tap
 * itself must never schedule events or mutate model state).
 */
class ObsTap
{
  public:
    virtual ~ObsTap() = default;

    /** A request was served at @p svc in @p latency ns (server side). */
    virtual void onTierLatency(const Microservice &svc, Tick latency) = 0;

    /**
     * An end-to-end request finished after @p latency ns; @p ok is
     * false for failed or dropped requests.
     */
    virtual void onEndToEnd(Tick latency, bool ok) = 0;

    /** Admission control refused an arrival at @p svc (any verdict). */
    virtual void onAdmissionReject(const Microservice &svc) = 0;
};

/**
 * One RPC marshalled across shards of a partitioned world: a caller
 * shard invoking a tier homed elsewhere. Plain values only — the two
 * shards share no object graph, so the call carries the request's
 * identity, payload sizes and the key route, never pointers. Every
 * shard builds the identical service graph, so `tier` (the target's
 * insertion-order index) resolves to the same tier everywhere.
 */
struct RemoteCall
{
    unsigned srcShard = 0;
    unsigned tier = 0;
    std::uint64_t requestId = 0;
    unsigned queryType = 0;
    std::uint64_t userId = 0;
    Tick deadline = 0;
    std::uint64_t dataKey = 0;
    trace::TraceId traceId = 0;
    trace::SpanId parentSpan = 0;
    unsigned attemptNo = 1;
    Bytes reqPayload = 0;
    Bytes respPayload = 0;
    Bytes reqWire = 0;
    Bytes respWire = 0;
    bool routeByKey = false;
    bool routeIsWrite = false;
    bool routeStoreAccess = false;
};

/**
 * What the home shard hands back for one RemoteCall: the request
 * accounting accumulated during remote handling (merged into the
 * caller's shared Request on arrival), the NIC queueing of the reply
 * leg, and the RPC outcome.
 */
struct RemoteDelta
{
    Tick networkTime = 0;
    Tick tcpProcTime = 0;
    Tick wireTime = 0;
    Tick appTime = 0;
    Tick queueTime = 0;
    Tick replyQueueing = 0;
    std::uint32_t retries = 0;
    std::uint8_t remoteHit = 0;
    bool dropped = false;
    RpcStatus status = RpcStatus::Ok;
};

/**
 * End-to-end application: graph + runtime.
 */
class App
{
  public:
    /** Runtime-wide configuration. */
    struct Config
    {
        /** Application name for reporting. */
        std::string name = "app";

        /** Kernel TCP processing cost model. */
        net::TcpCostModel tcp = net::TcpCostModel::native();

        /** FPGA RPC offload (Fig 16); off by default. */
        net::FpgaOffloadModel fpga = net::FpgaOffloadModel::off();

        /** End-to-end tail-latency QoS target. */
        Tick qosLatency = 100 * kTicksPerMs;

        /** Collect distributed traces. */
        bool tracing = true;

        /**
         * Trace sampling: keep one in n traces (1 = keep all). The
         * decision is trace-coherent — a kept trace keeps every span.
         */
        std::uint64_t traceSampleEvery = 1;

        /** Ring capacity of the span store (spans). */
        std::size_t traceCapacity = trace::TraceStore::kDefaultCapacity;

        /** Client-to-frontend payloads. */
        Bytes clientRequestBytes = 1024;
        Bytes clientResponseBytes = 4096;

        /**
         * End-to-end request deadline assigned at injection (0 = none).
         * Propagated down the call chain: attempts cap their timeout to
         * the remaining budget and tiers refuse arrivals past it.
         */
        Tick requestDeadline = 0;
    };

    App(SimContext ctx, cpu::Cluster &cluster, net::Network &network,
        Config config, std::uint64_t seed);

    App(const App &) = delete;
    App &operator=(const App &) = delete;

    // -- Graph construction ---------------------------------------------

    /** Add a tier; name must be unique. */
    Microservice &addService(ServiceDef def);

    /** @return true if a tier with this name exists. */
    bool hasService(const std::string &name) const;

    /** Tier by name (fatal if missing). */
    Microservice &service(const std::string &name);
    const Microservice &service(const std::string &name) const;

    /** Tiers in insertion order. */
    const std::vector<Microservice *> &services() const
    {
        return serviceOrder_;
    }

    /** Set the entry tier user requests hit first. */
    void setEntry(const std::string &name);
    const std::string &entry() const { return entry_; }

    /** Register a query type; returns its index. */
    unsigned addQueryType(QueryType qt);
    const std::vector<QueryType> &queryTypes() const { return queryTypes_; }

    /** Place one more instance of @p service on @p server. */
    Instance &addInstance(const std::string &service, cpu::Server &server);

    /** The server end-user requests originate from. */
    void setClientServer(cpu::Server &server);

    /**
     * Check the graph: entry set, every call target exists, every
     * service has at least one instance, no service calls itself.
     * Fatal on violation.
     */
    void validate() const;

    /** Graphviz DOT rendering of the dependency graph (Figs 4-8). */
    std::string exportDot() const;

    // -- Request injection ------------------------------------------------

    /**
     * Inject one end-to-end request of @p query_type for @p user_id.
     * @p done (optional) fires on completion with the full accounting.
     */
    void inject(unsigned query_type, std::uint64_t user_id,
                CompletionFn done = {});

    // -- Configuration knobs ----------------------------------------------

    const Config &config() const { return config_; }

    /** Toggle the FPGA offload for subsequent messages. */
    void setFpga(const net::FpgaOffloadModel &fpga) { config_.fpga = fpga; }

    /** Change the QoS target. */
    void setQosLatency(Tick qos) { config_.qosLatency = qos; }

    /** Set the end-to-end deadline for subsequently injected requests. */
    void setRequestDeadline(Tick d) { config_.requestDeadline = d; }

    // -- Keyed data tier --------------------------------------------------

    /**
     * Turn on the stateful data tier: install the key universe, give
     * every Cache-kind tier per-instance bounded stores, switch every
     * Cache stage to keyed mode, and shard Cache/Database tiers with
     * consistent hashing. Call once, after the graph is built and all
     * instances are placed. Strictly opt-in: without this call no
     * keyed state exists and execution is bit-identical to the legacy
     * fixed-hitProb runtime.
     */
    void enableKeyedData(const data::DataTierConfig &config);

    /** The key universe (null when keyed data is off). */
    const data::Keyspace *keyspace() const { return keyspace_.get(); }

    // -- Replicated keyed-data tier ----------------------------------------

    /**
     * Layer leader/follower replica groups over every keyed Cache
     * tier: quorum-acknowledged writes, read preferences with bounded
     * follower staleness, failover with log catch-up instead of a cold
     * restart, and (txnKeys >= 2) 2PC multi-partition transactions on
     * write-tagged keyed stages. Requires enableKeyedData first; call
     * once. Strictly opt-in: without this call no replica state exists
     * and execution is bit-identical to the unreplicated runtime.
     */
    void enableReplication(const replica::ReplicationConfig &config);

    /** @return true once enableReplication has been called. */
    bool replicationEnabled() const { return replicationEnabled_; }

    /** The replication configuration (valid once enabled). */
    const replica::ReplicationConfig &replicationConfig() const
    {
        return replicationConfig_;
    }

    // -- Partitioned deployment -------------------------------------------

    /**
     * Split this graph across the engine's shards: @p homes assigns
     * every tier its home shard (see data::assignPlacement) and
     * @p peers is the per-shard App vector — every shard's identical
     * replica of the graph, index == shard. Calls targeting a tier
     * whose home differs from this app's shard then travel through
     * `SimContext::postToShard` as marshalled RemoteCall/RemoteDelta
     * pairs instead of the local RPC path. Call once per shard, after
     * the graph is built; requires a sharded engine whose lookahead is
     * at most the network's wire latency. Strictly opt-in: without
     * this call execution is bit-identical to the colocated runtime.
     */
    void enablePartition(std::vector<App *> peers,
                         const std::map<std::string, unsigned> &homes);

    /** @return true once enablePartition has been called. */
    bool partitioned() const { return partitioned_; }

    /**
     * Serve one marshalled call on this (the target tier's home)
     * shard: rebuild a shard-local Request, perform the keyed store
     * access when the route asks for one, run the tier's handler, and
     * hand the accounting delta to @p done — which posts it back to
     * the calling shard.
     */
    void serveRemote(const RemoteCall &call,
                     std::function<void(const RemoteDelta &)> done);

    // -- Admission control / QoS classes ----------------------------------

    /**
     * Turn on server-side admission control: assign every query type
     * its QoS class, install the admission policy on every tier and
     * give every instance a bounded multi-class queue. Call once,
     * after the graph is built, instances are placed and query types
     * are registered. Strictly opt-in: without this call no admission
     * state exists and execution is bit-identical to the legacy
     * single-FIFO runtime.
     */
    void enableQos(const QosConfig &config);

    /** @return true once enableQos has been called. */
    bool qosEnabled() const { return qosEnabled_; }

    /** QoS class serving a query type (UserFacing while QoS is off). */
    QosClass qosClassOf(unsigned query_type) const;

    // -- Observability taps -----------------------------------------------

    /**
     * Install (or clear, with nullptr) the observability tap. The tap
     * is not owned and must outlive every run of this app (or be
     * cleared first). While null — the default — no per-request signal
     * is ever computed for it.
     */
    void setObsTap(ObsTap *tap) { obsTap_ = tap; }

    /** The installed observability tap (null when none). */
    ObsTap *obsTap() const { return obsTap_; }

    // -- Fault injection --------------------------------------------------

    /**
     * Install (or clear, with nullptr) the per-request fault hook.
     * While null — the default — delivery never consults it, so the
     * execution digest is untouched.
     */
    void setFaultHook(RequestFaultHook *hook) { faultHook_ = hook; }

    /**
     * Track in-flight RPC attempts per target instance so a crash can
     * fail them. Off by default (zero bookkeeping on the common path);
     * the fault injector arms it when its schedule contains a crash.
     */
    void enableCrashTracking() { crashTracking_ = true; }

    /**
     * Crash instance @p idx of @p service_name: it stops accepting
     * work, its queue is drained, and every tracked in-flight attempt
     * against it fails with RpcStatus::Crashed.
     */
    void crashInstance(const std::string &service_name, unsigned idx);

    /** Restore a crashed instance with a fresh thread pool. */
    void restartInstance(const std::string &service_name, unsigned idx);

    // -- Results ----------------------------------------------------------

    /** End-to-end latency over completed (non-dropped) requests. */
    const Histogram &endToEndLatency() const { return e2eLatency_; }

    /** End-to-end latency for one query type. */
    const Histogram &endToEndLatencyFor(unsigned query_type) const;

    std::uint64_t injected() const { return injected_->value(); }
    std::uint64_t completed() const { return completed_->value(); }
    std::uint64_t completedWithinQos() const
    {
        return completedInQos_->value();
    }
    std::uint64_t droppedRequests() const
    {
        return droppedRequests_->value();
    }
    /** Requests whose entry RPC failed after resilience was exhausted. */
    std::uint64_t failedRequests() const
    {
        return requestsFailed_->value();
    }

    /** Aggregate network-processing work time per completed request. */
    double meanNetworkTimePerRequest() const;
    double meanAppTimePerRequest() const;

    trace::TraceStore &traceStore() { return traceStore_; }
    const trace::TraceStore &traceStore() const { return traceStore_; }
    trace::Collector &collector() { return collector_; }

    /** The app-wide metrics registry every subsystem reports through. */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** The scheduling context (shard handle) this app runs in. */
    SimContext &ctx() { return ctx_; }
    const SimContext &ctx() const { return ctx_; }
    cpu::Cluster &cluster() { return cluster_; }
    net::Network &network() { return network_; }
    Rng &rng() { return rng_; }

    /**
     * Reset all measurement state (latency histograms, counters,
     * traces, per-server utilization) - call after warmup.
     */
    void statReset();

  private:
    /** The attempt state (app.cc) unregisters itself on destruction. */
    friend struct AttemptState;

    /** Per-(caller-instance, callee) connection pool key. */
    using PoolKey = std::pair<const void *, const Microservice *>;

    struct PoolKeyHash
    {
        std::size_t
        operator()(const PoolKey &k) const
        {
            return std::hash<const void *>{}(k.first) ^
                   (std::hash<const void *>{}(k.second) << 1);
        }
    };

    /** Effective kernel-code IPC on @p server (cached per model). */
    double kernelIpc(const cpu::Server &server);

    /** Per-service effective IPC on @p server (cached). */
    double serviceIpc(const Microservice &svc, const cpu::Server &server);

    rpc::ConnectionPool &poolFor(const void *caller,
                                 const Microservice &target);

    /** Per-(caller, callee) circuit breaker, created on first use. */
    rpc::CircuitBreaker &breakerFor(const void *caller,
                                    const Microservice &target);

    /** Per-callee retry budget, created on first use. */
    rpc::RetryBudget &budgetFor(const Microservice &target);

    /**
     * Issue one RPC from @p caller_server to @p target, applying the
     * target's resilience policy (deadline check, breaker gate, retry
     * loop around rpcAttempt). With an inactive policy this is a
     * passthrough to a single attempt — the legacy fire-and-wait path.
     * @p done fires back on the caller with the outcome and wall time.
     * @p route (keyed mode) addresses the call to a data key's shard
     * instead of the legacy userId/round-robin selection.
     */
    void rpcCall(unsigned caller_server, Instance *caller_inst,
                 Microservice &target, RequestPtr req,
                 trace::SpanId parent_span, Bytes req_bytes,
                 Bytes resp_bytes, bool carries_media, RpcDone done,
                 data::RouteHint route = {});

    /** One attempt of an RPC: serialize, send, queue, handle, reply. */
    void rpcAttempt(unsigned caller_server, Instance *caller_inst,
                    Microservice &target, RequestPtr req,
                    trace::SpanId parent_span, Bytes req_bytes,
                    Bytes resp_bytes, bool carries_media,
                    unsigned attempt_no, RpcDone done,
                    data::RouteHint route = {});

    /**
     * Cross-shard leg of one attempt: charge the forward NIC/wire leg
     * on the caller, marshal the call, and post it to the target
     * tier's home shard; the home shard's serveRemote posts the delta
     * back, where it merges into @p req and settles the attempt.
     */
    void remoteAttempt(unsigned caller_server,
                       std::shared_ptr<AttemptState> as,
                       Microservice &target, RequestPtr req,
                       trace::SpanId parent_span, Bytes req_payload,
                       Bytes resp_payload, Bytes req_wire, Bytes resp_wire,
                       unsigned attempt_no, const data::RouteHint &route);

    /** Settle one attempt exactly once and fire its completion. */
    void settleAttempt(AttemptState &as, RpcStatus status);

    /** Record a caller-side span for a failed attempt. */
    void recordErrorSpan(const RequestPtr &req, trace::SpanId parent_span,
                         const Microservice &target, Tick start,
                         unsigned attempt_no, RpcStatus status);

    // -- Crash bookkeeping (active only with crash tracking on) ---------

    void registerAttempt(Instance &inst, AttemptState *as);
    void unregisterAttempt(Instance &inst, AttemptState *as);

    /** Fail every tracked in-flight attempt against @p inst. */
    void failInFlight(Instance &inst);

    /** Arrival at the chosen instance after receive processing. */
    void
    deliverToInstance(Instance &inst, RequestPtr req,
                      trace::SpanId parent_span, Tick pre_network,
                      unsigned attempt_no,
                      std::shared_ptr<bool> abandoned,
                      std::function<void(std::shared_ptr<HandlerCtx>,
                                         RpcStatus)>
                          respond);

    /** Start handling queued work if threads are available. */
    void maybeStartHandling(Instance &inst);

    /** Interpret stage @p idx of the handler program. */
    void runStage(std::shared_ptr<HandlerCtx> ctx, std::size_t idx,
                  std::function<void()> done);

    /**
     * Drive one 2PC multi-partition transaction from a write-tagged
     * keyed cache stage: prepare RPCs to every touched group's leader
     * under a coordinator abort timer, then commit (apply all writes,
     * wait out the slowest quorum ack) or mark the handler TxnAborted.
     */
    void runTxnStage(std::shared_ptr<HandlerCtx> ctx, const Stage *stage,
                     Microservice *cache_tier,
                     std::vector<std::uint64_t> keys,
                     std::function<void()> next);

    /** Charge a compute task's cycles to user/lib modes. */
    void chargeCompute(Microservice &svc, double cycles, double ipc);

    /** Charge a network task's cycles to kernel mode. */
    void chargeNetwork(Microservice *svc, double cycles, double ipc);

    SimContext ctx_;
    cpu::Cluster &cluster_;
    net::Network &network_;
    Config config_;
    Rng rng_;
    /**
     * Dedicated stream for resilience decisions (retry jitter).
     * Seeded by derivation, NOT forked from rng_: forking would jump
     * the main stream and change digests of runs that never retry.
     */
    Rng resilienceRng_;

    std::map<std::string, std::unique_ptr<Microservice>> services_;
    std::vector<Microservice *> serviceOrder_;
    std::string entry_;
    std::vector<QueryType> queryTypes_;
    cpu::Server *clientServer_ = nullptr;

    std::unordered_map<PoolKey, std::unique_ptr<rpc::ConnectionPool>,
                       PoolKeyHash>
        pools_;
    std::unordered_map<PoolKey, std::unique_ptr<rpc::CircuitBreaker>,
                       PoolKeyHash>
        breakers_;
    std::unordered_map<const Microservice *, rpc::RetryBudget> budgets_;
    std::unordered_map<std::string, double> kernelIpcCache_;
    std::unordered_map<std::string, double> serviceIpcCache_;

    /** Key universe of the stateful data tier (keyed mode only). */
    std::unique_ptr<data::Keyspace> keyspace_;
    data::DataTierConfig dataConfig_;

    RequestFaultHook *faultHook_ = nullptr;
    ObsTap *obsTap_ = nullptr;
    bool crashTracking_ = false;
    /** Partitioned deployment armed (enablePartition called). */
    bool partitioned_ = false;
    /** Per-shard peer apps of a partitioned world (index == shard). */
    std::vector<App *> peerApps_;
    /** Admission control armed (enableQos called). */
    bool qosEnabled_ = false;
    /** Replica groups armed (enableReplication called). */
    bool replicationEnabled_ = false;
    replica::ReplicationConfig replicationConfig_;
    /** In-flight attempts per target instance (crash tracking only). */
    std::unordered_map<const Instance *, std::vector<AttemptState *>>
        inflight_;

    MetricsRegistry metrics_;
    trace::TraceStore traceStore_;
    trace::Collector collector_;
    trace::IdAllocator ids_;
    trace::ServiceId clientServiceId_ = trace::kNoService;

    Histogram e2eLatency_;
    std::vector<std::unique_ptr<Histogram>> e2eByQuery_;
    std::uint64_t nextRequestId_ = 0;
    /** Request accounting, owned by the metrics registry. */
    Counter *injected_ = nullptr;
    Counter *completed_ = nullptr;
    Counter *completedInQos_ = nullptr;
    Counter *droppedRequests_ = nullptr;
    Counter *requestsFailed_ = nullptr;
    /** Aggregate blocked-acquire count across all connection pools. */
    Counter *poolBlocked_ = nullptr;
    /** RPC attempt outcomes and resilience actions. */
    Counter *rpcErrors_ = nullptr;
    Counter *rpcTimeouts_ = nullptr;
    Counter *rpcRetries_ = nullptr;
    Counter *rpcRetryBudgetExhausted_ = nullptr;
    Counter *rpcBreakerFastFails_ = nullptr;
    Counter *rpcDeadlineExceeded_ = nullptr;
    Counter *rpcShed_ = nullptr;
    Counter *rpcPoolTimeouts_ = nullptr;
    Counter *rpcCrashedInFlight_ = nullptr;
    Counter *rpcAbandonedArrivals_ = nullptr;
    /**
     * Replication accounting, created lazily by enableReplication so
     * unreplicated runs emit exactly the legacy metric set.
     */
    Counter *rpcQuorumLost_ = nullptr;
    Counter *rpcStaleRejects_ = nullptr;
    Counter *rpcTxnStarted_ = nullptr;
    Counter *rpcTxnCommits_ = nullptr;
    Counter *rpcTxnAborts_ = nullptr;
    /**
     * Admission accounting, created lazily by enableQos so disabled
     * runs emit exactly the legacy metric set. Indexed by QosClass.
     */
    std::array<Counter *, kQosClassCount> admAdmitted_{};
    std::array<Counter *, kQosClassCount> admServed_{};
    std::array<Counter *, kQosClassCount> admShed_{};
    std::array<Counter *, kQosClassCount> admThrottled_{};
    std::array<Counter *, kQosClassCount> admOverflow_{};
    double totalNetworkTime_ = 0.0;
    double totalAppTime_ = 0.0;
};

} // namespace uqsim::service

#endif // UQSIM_SERVICE_APP_HH
