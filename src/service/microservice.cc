#include "service/microservice.hh"

#include <functional>

#include "core/logging.hh"
#include "service/app.hh"

namespace uqsim::service {

std::string
serviceKindName(ServiceKind kind)
{
    switch (kind) {
      case ServiceKind::Frontend:
        return "frontend";
      case ServiceKind::Stateless:
        return "stateless";
      case ServiceKind::Cache:
        return "cache";
      case ServiceKind::Database:
        return "database";
    }
    return "unknown";
}

Instance::Instance(Microservice &svc, unsigned idx, cpu::Server &server)
    : svc_(svc), idx_(idx), server_(server),
      freeThreads_(svc.def().threadsPerInstance)
{}

double
Instance::occupancy() const
{
    const unsigned total = svc_.def().threadsPerInstance;
    if (total == 0)
        return 0.0;
    return static_cast<double>(total - freeThreads_) /
           static_cast<double>(total);
}

std::size_t
Instance::inFlight() const
{
    return (svc_.def().threadsPerInstance - freeThreads_) +
           queueLength();
}

Microservice::Microservice(App &app, ServiceDef def)
    : app_(app), def_(std::move(def))
{
    if (def_.name.empty())
        fatal("Microservice with empty name");
    if (def_.threadsPerInstance == 0)
        fatal(strCat("service '", def_.name, "' with zero threads"));
    traceServiceId_ = app.traceStore().intern(def_.name);
}

Instance &
Microservice::addInstance(cpu::Server &server)
{
    if (replicas_)
        // Group membership is fixed at enableReplication: growing the
        // ring would silently reshuffle every group's successor set.
        fatal(strCat("addInstance on replicated tier '", def_.name,
                     "'"));
    instances_.push_back(std::make_unique<Instance>(
        *this, static_cast<unsigned>(instances_.size()), server));
    if (def_.admission.active())
        // Scale-outs after enableQos get their own class queues, with
        // a full token bucket clocked from now.
        instances_.back()->admission_ =
            std::make_unique<AdmissionQueue<Instance::Arrival>>(
                def_.admission, def_.queueCapacity, app_.ctx().now());
    if (shardMap_)
        // Consistent hashing: the new shard takes over ~1/n of the
        // ring; the moved keys find it cold and warm it up.
        shardMap_->rebuild(static_cast<unsigned>(instances_.size()));
    if (!cacheModels_.empty()) {
        cacheModels_.push_back(
            std::make_unique<data::CacheModel>(cacheConfig_));
        cacheModels_.back()->bindMetrics(app_.metrics(), def_.name);
        // A scale-out replica starts empty: account it as a cold
        // restart so warm-up transients are visible in data.* metrics.
        cacheModels_.back()->clearCold();
    }
    return *instances_.back();
}

void
Microservice::enableKeyedRouting(unsigned vnodes)
{
    if (instances_.empty())
        fatal(strCat("enableKeyedRouting on '", def_.name,
                     "' before any instance"));
    shardMap_ = std::make_unique<data::ShardMap>(vnodes);
    shardMap_->rebuild(static_cast<unsigned>(instances_.size()));
}

unsigned
Microservice::shardIndexForKey(std::uint64_t key) const
{
    if (!shardMap_)
        fatal(strCat("shardIndexForKey on '", def_.name,
                     "' without keyed routing"));
    return shardMap_->shardFor(key);
}

Instance *
Microservice::tryInstanceForKey(std::uint64_t key)
{
    if (misrouted_)
        return instances_.front().get();
    Instance &inst = *instances_[shardIndexForKey(key)];
    if (!inst.active())
        return nullptr;
    return &inst;
}

void
Microservice::attachCacheModels(const data::CacheModelConfig &config)
{
    if (!cacheModels_.empty())
        fatal(strCat("cache models already attached to '", def_.name,
                     "'"));
    if (instances_.empty())
        fatal(strCat("attachCacheModels on '", def_.name,
                     "' before any instance"));
    cacheConfig_ = config;
    cacheModels_.reserve(instances_.size());
    for (std::size_t i = 0; i < instances_.size(); ++i) {
        cacheModels_.push_back(
            std::make_unique<data::CacheModel>(config));
        cacheModels_.back()->bindMetrics(app_.metrics(), def_.name);
    }
    unreachableMisses_ =
        &app_.metrics().counter("data." + def_.name + ".misses");
}

data::CacheModel *
Microservice::cacheModel(unsigned idx)
{
    if (idx >= cacheModels_.size())
        return nullptr;
    return cacheModels_[idx].get();
}

bool
Microservice::keyedAccess(std::uint64_t key, Tick now, bool is_write)
{
    const unsigned idx = shardIndexForKey(key);
    if (!instances_[idx]->active()) {
        // The owning shard is down: its state is gone and must not be
        // re-warmed by lookups, but the access still counts against
        // the tier's hit ratio — this is the in-outage dip.
        if (!is_write && unreachableMisses_)
            unreachableMisses_->inc();
        return false;
    }
    data::CacheModel *model = cacheModel(idx);
    if (!model)
        return false;
    if (is_write) {
        model->write(key, now);
        return false;
    }
    return model->access(key, now);
}

data::CacheStats
Microservice::dataStats() const
{
    data::CacheStats total;
    for (const auto &model : cacheModels_) {
        const data::CacheStats &s = model->stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.inserts += s.inserts;
        total.evictions += s.evictions;
        total.expirations += s.expirations;
        total.invalidations += s.invalidations;
        total.writes += s.writes;
        total.coldRestarts += s.coldRestarts;
        total.replayDrops += s.replayDrops;
    }
    return total;
}

void
Microservice::enableReplication(const replica::ReplicationConfig &config)
{
    if (replicas_)
        fatal(strCat("replication already enabled on '", def_.name,
                     "'"));
    if (!shardMap_)
        fatal(strCat("enableReplication on '", def_.name,
                     "' without keyed routing"));
    if (cacheModels_.empty())
        fatal(strCat("enableReplication on '", def_.name,
                     "' without cache models"));
    replicas_ = std::make_unique<replica::ReplicaSet>(
        config, static_cast<unsigned>(instances_.size()));
    // Counters are created here, not up-front, so unreplicated runs
    // emit exactly the legacy metric set (same discipline as QoS).
    MetricsRegistry &m = app_.metrics();
    const std::string &t = def_.name;
    replStaleReads_ = &m.counter("replica." + t + ".stale_reads");
    replStaleRejects_ = &m.counter("replica." + t + ".stale_rejects");
    replQuorumLost_ = &m.counter("replica." + t + ".quorum_lost");
    replRywRedirects_ = &m.counter("replica." + t + ".ryw_redirects");
    replElections_ = &m.counter("replica." + t + ".elections");
    replFailovers_ = &m.counter("replica." + t + ".failovers");
    replTrims_ = &m.counter("replica." + t + ".log_trims");
    replStoreLosses_ = &m.counter("replica." + t + ".store_losses");
    replTxnAborts_ = &m.counter("replica." + t + ".txn_aborts");
}

void
Microservice::applyReplicaMaintenance(unsigned group, Tick now)
{
    const replica::Maintenance m = replicas_->poll(group, now);
    data::CacheModel *model = cacheModel(group);
    if (!model)
        return;
    if (m.clearStore)
        // Every member died: the logical store is lost for real.
        model->clearCold();
    else if (m.trim)
        // Failover: the promoted follower replays its log into the
        // warm group store, minus the un-replicated tail.
        model->dropWrittenAfter(m.trimCutoff);
}

void
Microservice::syncReplicaMetrics()
{
    const replica::ReplicaCounts &c = replicas_->counts();
    auto delta = [](Counter *ctr, std::uint64_t cur,
                    std::uint64_t &last) {
        if (cur > last) {
            if (ctr)
                ctr->inc(cur - last);
            last = cur;
        }
    };
    delta(replStaleReads_, c.staleReads, mirrored_.staleReads);
    delta(replStaleRejects_, c.staleRejects, mirrored_.staleRejects);
    delta(replQuorumLost_, c.quorumLostWrites,
          mirrored_.quorumLostWrites);
    delta(replQuorumLost_, c.quorumLostReads,
          mirrored_.quorumLostReads);
    delta(replRywRedirects_, c.rywRedirects, mirrored_.rywRedirects);
    delta(replElections_, c.electionsStarted,
          mirrored_.electionsStarted);
    delta(replFailovers_, c.failovers, mirrored_.failovers);
    delta(replTrims_, c.trims, mirrored_.trims);
    delta(replStoreLosses_, c.storeLosses, mirrored_.storeLosses);
}

Microservice::ReplicatedAccess
Microservice::replicatedAccess(std::uint64_t key, Tick now,
                               bool is_write)
{
    ReplicatedAccess acc;
    const unsigned group = shardIndexForKey(key);
    applyReplicaMaintenance(group, now);
    const replica::RouteDecision d =
        replicas_->route(group, key, is_write, now);
    syncReplicaMetrics();
    switch (d.verdict) {
      case replica::Verdict::Ok:
        break;
      case replica::Verdict::QuorumLost:
        acc.status = trace::SpanStatus::QuorumLost;
        return acc;
      case replica::Verdict::StaleRead:
        acc.status = trace::SpanStatus::StaleRead;
        return acc;
      case replica::Verdict::Unreachable:
        // Dead group: data unreachable, same accounting as a downed
        // unreplicated shard.
        if (!is_write && unreachableMisses_)
            unreachableMisses_->inc();
        acc.status = trace::SpanStatus::Unreachable;
        return acc;
    }
    data::CacheModel *model = cacheModel(group);
    if (is_write) {
        if (model)
            model->write(key, now);
        replicas_->recordWrite(group, now);
        acc.quorumDelay = d.quorumDelay;
        return acc;
    }
    acc.hit = model && model->access(key, now);
    return acc;
}

Instance *
Microservice::resolveKeyInstance(const data::RouteHint &route, Tick now,
                                 trace::SpanStatus &status)
{
    status = trace::SpanStatus::Ok;
    if (!replicas_) {
        Instance *inst = tryInstanceForKey(route.key);
        if (!inst)
            status = trace::SpanStatus::Unreachable;
        return inst;
    }
    if (misrouted_)
        return instances_.front().get();
    const unsigned group = shardIndexForKey(route.key);
    applyReplicaMaintenance(group, now);
    // Second resolution of this access (the stage already counted it):
    // count = false keeps the event counts per-access.
    const replica::RouteDecision d = replicas_->route(
        group, route.key, route.write, now, /*count=*/false);
    switch (d.verdict) {
      case replica::Verdict::Ok:
        break;
      case replica::Verdict::QuorumLost:
        status = trace::SpanStatus::QuorumLost;
        return nullptr;
      case replica::Verdict::StaleRead:
        status = trace::SpanStatus::StaleRead;
        return nullptr;
      case replica::Verdict::Unreachable:
        status = trace::SpanStatus::Unreachable;
        return nullptr;
    }
    Instance &inst = *instances_[d.instance];
    if (!inst.active()) {
        // The member went down between the decision inputs changing
        // and this attempt; fail like any crashed target.
        status = trace::SpanStatus::Unreachable;
        return nullptr;
    }
    return &inst;
}

void
Microservice::noteTxnAbort()
{
    if (replTxnAborts_)
        replTxnAborts_->inc();
}

unsigned
Microservice::activeInstances() const
{
    unsigned n = 0;
    for (const auto &inst : instances_)
        if (inst->active())
            ++n;
    return n;
}

Instance &
Microservice::selectInstance(const Request &req)
{
    if (activeInstances() == 0)
        panic(strCat("service '", def_.name, "' has no active instances"));
    Instance *inst = trySelectInstance(req);
    if (!inst)
        panic(strCat("sharded service '", def_.name,
                     "' routed to inactive shard"));
    return *inst;
}

Instance *
Microservice::trySelectInstance(const Request &req)
{
    if (activeInstances() == 0)
        return nullptr;

    if (misrouted_)
        return instances_.front().get();

    if (def_.kind == ServiceKind::Cache ||
        def_.kind == ServiceKind::Database) {
        // Shard by user key over *all* instances (shards do not move
        // when instances warm up; stateful tiers are provisioned
        // up-front). An inactive shard means its data is unreachable.
        const std::size_t shard =
            std::hash<std::uint64_t>{}(req.userId * 0x9e3779b97f4a7c15ull) %
            instances_.size();
        Instance &inst = *instances_[shard];
        if (!inst.active())
            return nullptr;
        return &inst;
    }

    if (def_.lbPolicy == LbPolicy::JoinShortestQueue) {
        // Route to the active instance with the least pending work
        // (queue + busy threads). Breaks ties by index, so the scan is
        // deterministic.
        Instance *best = nullptr;
        std::size_t best_load = 0;
        for (auto &inst : instances_) {
            if (!inst->active())
                continue;
            const std::size_t load =
                inst->queueLength() +
                (def_.threadsPerInstance - inst->freeThreads());
            if (!best || load < best_load) {
                best = inst.get();
                best_load = load;
            }
        }
        return best;
    }

    // Stateless: round-robin over active instances.
    for (std::size_t tries = 0; tries < instances_.size(); ++tries) {
        Instance &inst = *instances_[rrCursor_ % instances_.size()];
        ++rrCursor_;
        if (inst.active())
            return &inst;
    }
    return nullptr;
}

void
Microservice::setThreadsPerInstance(unsigned threads)
{
    if (threads == 0)
        fatal(strCat("service '", def_.name, "' with zero threads"));
    for (auto &inst : instances_) {
        if (inst->freeThreads_ != def_.threadsPerInstance)
            panic(strCat("setThreadsPerInstance on busy instance of '",
                         def_.name, "'"));
        inst->freeThreads_ = threads;
    }
    def_.threadsPerInstance = threads;
}

double
Microservice::meanOccupancy() const
{
    double total = 0.0;
    unsigned n = 0;
    for (const auto &inst : instances_) {
        if (!inst->active())
            continue;
        total += inst->occupancy();
        ++n;
    }
    return n ? total / n : 0.0;
}

double
Microservice::meanInFlight() const
{
    double total = 0.0;
    unsigned n = 0;
    for (const auto &inst : instances_) {
        if (!inst->active())
            continue;
        total += static_cast<double>(inst->inFlight());
        ++n;
    }
    return n ? total / n : 0.0;
}

double
Microservice::meanQueueLength() const
{
    double total = 0.0;
    unsigned n = 0;
    for (const auto &inst : instances_) {
        if (!inst->active())
            continue;
        total += static_cast<double>(inst->queueLength());
        ++n;
    }
    return n ? total / n : 0.0;
}

std::uint64_t
Microservice::totalDropped() const
{
    std::uint64_t total = 0;
    for (const auto &inst : instances_)
        total += inst->dropped();
    return total;
}

void
Microservice::chargeKernel(double cycles, double instructions)
{
    kernelCycles_ += cycles;
    kernelInstr_ += instructions;
}

void
Microservice::chargeUser(double cycles, double instructions)
{
    userCycles_ += cycles;
    userInstr_ += instructions;
}

void
Microservice::chargeLib(double cycles, double instructions)
{
    libCycles_ += cycles;
    libInstr_ += instructions;
}

} // namespace uqsim::service
