#include "service/handler.hh"

#include <algorithm>

namespace uqsim::service {

HandlerSpec &
HandlerSpec::compute(Dist cycles)
{
    Stage s;
    s.kind = Stage::Kind::Compute;
    s.computeCycles = std::move(cycles);
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::computeTagged(const std::string &tag, Dist cycles)
{
    Stage s;
    s.kind = Stage::Kind::Compute;
    s.computeCycles = std::move(cycles);
    s.onlyForTag = tag;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::call(const std::string &target, unsigned fanout)
{
    Stage s;
    s.kind = Stage::Kind::Call;
    s.target = target;
    s.fanout = fanout;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::callWithMedia(const std::string &target)
{
    Stage s;
    s.kind = Stage::Kind::Call;
    s.target = target;
    s.carriesMedia = true;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::callTaggedWithMedia(const std::string &tag,
                                 const std::string &target)
{
    Stage s;
    s.kind = Stage::Kind::Call;
    s.target = target;
    s.carriesMedia = true;
    s.onlyForTag = tag;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::callWithProbability(const std::string &target, double p)
{
    Stage s;
    s.kind = Stage::Kind::Call;
    s.target = target;
    s.probability = p;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::callTagged(const std::string &tag, const std::string &target,
                        unsigned fanout)
{
    Stage s;
    s.kind = Stage::Kind::Call;
    s.target = target;
    s.fanout = fanout;
    s.onlyForTag = tag;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::parallelCall(const std::string &target, unsigned fanout)
{
    Stage s;
    s.kind = Stage::Kind::Call;
    s.target = target;
    s.fanout = fanout;
    s.parallel = true;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::cache(const std::string &cache_tier, const std::string &db_tier,
                   double hit_ratio)
{
    Stage s;
    s.kind = Stage::Kind::Cache;
    s.target = cache_tier;
    s.dbTarget = db_tier;
    s.hitRatio = hit_ratio;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::delay(Dist delay_ns, bool is_network)
{
    Stage s;
    s.kind = Stage::Kind::Delay;
    s.delayNs = std::move(delay_ns);
    s.delayIsNetwork = is_network;
    stages.push_back(std::move(s));
    return *this;
}

HandlerSpec &
HandlerSpec::add(Stage stage)
{
    stages.push_back(std::move(stage));
    return *this;
}

std::vector<std::string>
HandlerSpec::callTargets() const
{
    std::vector<std::string> out;
    for (const Stage &s : stages) {
        if (s.kind == Stage::Kind::Call)
            out.push_back(s.target);
        if (s.kind == Stage::Kind::Cache) {
            out.push_back(s.target);
            if (!s.dbTarget.empty())
                out.push_back(s.dbTarget);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace uqsim::service
