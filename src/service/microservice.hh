/**
 * @file
 * Microservice tiers and their instances.
 *
 * A Microservice is one node of the dependency graph (one box in the
 * paper's Figs 4-8): a profile, a handler program, a deployment kind
 * and a set of instances placed on servers. Instances own a worker
 * thread pool and a request queue; the App runtime drives them.
 */

#ifndef UQSIM_SERVICE_MICROSERVICE_HH
#define UQSIM_SERVICE_MICROSERVICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/histogram.hh"
#include "core/stats.hh"
#include "core/types.hh"
#include "data/cache_model.hh"
#include "data/config.hh"
#include "data/shard_map.hh"
#include "replica/replication.hh"
#include "cpu/microarch.hh"
#include "cpu/server.hh"
#include "rpc/protocol.hh"
#include "rpc/resilience.hh"
#include "service/admission.hh"
#include "service/handler.hh"
#include "service/request.hh"
#include "trace/span.hh"

namespace uqsim::service {

class App;
class Microservice;
struct HandlerCtx;

/** Deployment/statefulness class of a tier. */
enum class ServiceKind
{
    Frontend,   ///< entry load balancer / web server
    Stateless,  ///< logic tier; any instance can serve any request
    Cache,      ///< in-memory KV store (memcached); sharded by key
    Database,   ///< persistent store (MongoDB/MySQL); sharded by key
};

/** Instance-selection policy for stateless tiers. */
enum class LbPolicy
{
    RoundRobin,         ///< classic rotation (the suite's default)
    JoinShortestQueue,  ///< route to the least-loaded active instance
};

/** @return a short printable kind name. */
std::string serviceKindName(ServiceKind kind);

/**
 * Everything needed to instantiate a microservice tier.
 */
struct ServiceDef
{
    /** Unique tier name within the application. */
    std::string name;

    /** Static microarchitectural profile (see cpu::ServiceProfile). */
    cpu::ServiceProfile profile;

    /** Per-request behaviour. */
    HandlerSpec handler;

    /** Statefulness class; drives instance selection. */
    ServiceKind kind = ServiceKind::Stateless;

    /** Worker threads per instance (concurrency limit). */
    unsigned threadsPerInstance = 16;

    /** Request queue capacity per instance; overflow drops. */
    unsigned queueCapacity = 4096;

    /** Protocol used by callers *of* this service. */
    rpc::ProtocolModel protocol = rpc::ProtocolModel::thrift();

    /**
     * Resilience policy applied by callers *of* this service
     * (deadlines, retries, breaker, shedding). Inactive by default:
     * the legacy no-failure semantics are preserved bit-for-bit.
     */
    rpc::ResiliencePolicy resilience;

    /** Load-balancing policy across instances (stateless tiers). */
    LbPolicy lbPolicy = LbPolicy::RoundRobin;

    /**
     * Server-side admission control (bounded per-class queues, WRR
     * dequeue, token bucket, cost-based shedding). Inactive by
     * default: instances keep the legacy single FIFO.
     */
    AdmissionPolicy admission;

    /** Default request payload bytes when the caller gives none. */
    Bytes defaultRequestBytes = 512;

    /** Default response payload bytes. */
    Bytes defaultResponseBytes = 1024;
};

/**
 * One running copy of a microservice on a server.
 */
class Instance
{
  public:
    Instance(Microservice &svc, unsigned idx, cpu::Server &server);

    /** Owning tier. */
    Microservice &svc() { return svc_; }
    const Microservice &svc() const { return svc_; }

    /** Index within the tier. */
    unsigned index() const { return idx_; }

    /** Hosting server. */
    cpu::Server &server() { return server_; }
    const cpu::Server &server() const { return server_; }

    /**
     * Whether the instance accepts new requests (autoscaled instances
     * warm up first).
     */
    bool active() const { return active_; }
    void setActive(bool a) { active_ = a; }

    /** Free worker threads right now. */
    unsigned freeThreads() const { return freeThreads_; }

    /** Requests queued for a thread (all QoS classes). */
    std::size_t queueLength() const
    {
        return queue_.size() + (admission_ ? admission_->size() : 0);
    }

    /**
     * RPCs in flight at this instance: admitted and not yet answered,
     * i.e. occupying a worker thread or waiting in the queue. The
     * signal queue depth alone misses — a tier can drain its queue yet
     * still be saturated thread-for-thread.
     */
    std::size_t inFlight() const;

    /** Fraction of worker threads occupied (busy or blocked). */
    double occupancy() const;

    /** Requests fully served. */
    std::uint64_t served() const { return served_; }

    /** Requests dropped on queue overflow. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Requests that terminated with a failure status at this instance
     * (injected errors, shedding, deadline refusals, crash victims).
     */
    std::uint64_t failed() const { return failed_; }

    /**
     * Crash generation: bumped every time the instance crashes so
     * continuations belonging to a previous life can detect that their
     * thread/queue state is gone.
     */
    std::uint64_t crashEpoch() const { return crashEpoch_; }

    /** Cumulative CPU busy time of this instance's compute tasks. */
    Tick cpuBusyTime() const { return cpuBusyTime_; }

  private:
    friend class App;
    friend class Microservice;

    /** A request parked in the instance queue. */
    struct Arrival
    {
        RequestPtr req;
        trace::SpanId parentSpan = trace::kNoParent;
        Tick enqueued = 0;
        /** Network processing charged to this span before handling. */
        Tick preNetworkTime = 0;
        /** 1-based attempt number of the RPC being served. */
        std::uint8_t attempt = 1;
        /**
         * Shared settle flag of the caller's attempt: set once the
         * caller timed out / gave up, so the work can be skipped.
         * Null on the legacy (no-resilience) path.
         */
        std::shared_ptr<bool> abandoned;
        /** Continuation delivering the response to the caller side. */
        std::function<void(std::shared_ptr<HandlerCtx>, trace::SpanStatus)>
            respondCtx;
    };

    Microservice &svc_;
    unsigned idx_;
    cpu::Server &server_;
    bool active_ = true;

    unsigned freeThreads_;
    std::deque<Arrival> queue_;

    /**
     * Multi-class admission queue; null until App::enableQos. While
     * set it replaces queue_ entirely, so only one of the two holds
     * work at any time.
     */
    std::unique_ptr<AdmissionQueue<Arrival>> admission_;

    std::uint64_t served_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t crashEpoch_ = 0;
    Tick cpuBusyTime_ = 0;
};

/**
 * A microservice tier: definition + instances + aggregate stats.
 */
class Microservice
{
  public:
    Microservice(App &app, ServiceDef def);

    Microservice(const Microservice &) = delete;
    Microservice &operator=(const Microservice &) = delete;

    const std::string &name() const { return def_.name; }
    const ServiceDef &def() const { return def_; }
    ServiceDef &mutableDef() { return def_; }
    App &app() { return app_; }

    /**
     * Interned id of this tier's name in the app's TraceStore,
     * resolved once at construction so span recording on the hot path
     * never touches a string.
     */
    trace::ServiceId traceServiceId() const { return traceServiceId_; }

    /** Create an instance on @p server; active immediately. */
    Instance &addInstance(cpu::Server &server);

    /** All instances (active and warming). */
    const std::vector<std::unique_ptr<Instance>> &instances() const
    {
        return instances_;
    }

    /** Number of *active* instances. */
    unsigned activeInstances() const;

    /**
     * Pick the instance serving @p req: stateful tiers shard by
     * userId; stateless tiers round-robin over active instances.
     */
    Instance &selectInstance(const Request &req);

    /**
     * Crash-tolerant variant: @return nullptr instead of panicking
     * when no active instance (or the required shard) is available.
     * Used by the resilient RPC path so an outage becomes a fast
     * client-side failure rather than a simulator abort.
     */
    Instance *trySelectInstance(const Request &req);

    // -- Keyed data tier (opt-in; see src/data/) -----------------------

    /**
     * Shard this tier's key universe across its instances with a
     * consistent-hash ring. Until called, stateful tiers keep the
     * legacy userId-hash placement (digest-preserving).
     */
    void enableKeyedRouting(unsigned vnodes);
    bool keyedRouting() const { return shardMap_ != nullptr; }

    /** Ring owner index of @p key (fatal without keyed routing). */
    unsigned shardIndexForKey(std::uint64_t key) const;

    /**
     * Ring owner of @p key if it is active, nullptr otherwise — a
     * crashed shard's keys are unreachable, exactly like the legacy
     * stateful selection.
     */
    Instance *tryInstanceForKey(std::uint64_t key);

    /**
     * Give every instance a bounded keyed store (capacity per
     * instance). Later scale-outs get a fresh cold store.
     */
    void attachCacheModels(const data::CacheModelConfig &config);
    bool hasCacheModels() const { return !cacheModels_.empty(); }

    /** Instance @p idx's store (null when none attached). */
    data::CacheModel *cacheModel(unsigned idx);

    /**
     * One keyed data access against the owning shard's store.
     * @return true on a cache hit. Lookups routed to a downed shard
     * count as misses without touching (and re-warming) its store;
     * writes apply the write policy and always miss (the backing
     * store must be written regardless).
     */
    bool keyedAccess(std::uint64_t key, Tick now, bool is_write);

    /** Aggregate store accounting across instances. */
    data::CacheStats dataStats() const;

    // -- Replica groups (opt-in; see src/replica/) ---------------------

    /**
     * Layer leader/follower replica groups over the keyed stores:
     * every ring shard g becomes group g served by the factor ring
     * successors, with the group's logical store pinned to model slot
     * g. Requires keyed routing and attached cache models; fatal when
     * called twice or on a tier that later grows (replicated tiers are
     * provisioned up-front).
     */
    void enableReplication(const replica::ReplicationConfig &config);
    bool replicated() const { return replicas_ != nullptr; }

    /** The group state machine (null while unreplicated). */
    replica::ReplicaSet *replicaSet() { return replicas_.get(); }
    const replica::ReplicaSet *replicaSet() const
    {
        return replicas_.get();
    }

    /** Outcome of one replicated stage-time store access. */
    struct ReplicatedAccess
    {
        /** Read served from the group store and hit. */
        bool hit = false;

        /** Write: simulated wait until the quorum ack. */
        Tick quorumDelay = 0;

        /** Typed reject when the group cannot serve right now. */
        trace::SpanStatus status = trace::SpanStatus::Ok;
    };

    /**
     * One keyed access through the replica layer: owed maintenance
     * (failover trim / total-loss clear) is applied to the group
     * store first, then the route decision is made and — when
     * servable — the access lands on the group's pinned store.
     */
    ReplicatedAccess replicatedAccess(std::uint64_t key, Tick now,
                                      bool is_write);

    /**
     * Attempt-time instance resolution for a keyed RPC. Unreplicated
     * tiers: the ring owner, Unreachable when it is down (the legacy
     * tryInstanceForKey contract). Replicated tiers: the serving
     * member per the route decision — leader for writes, preference
     * pick for reads — with typed QuorumLost/StaleRead rejects in
     * @p status when nothing can serve.
     */
    Instance *resolveKeyInstance(const data::RouteHint &route, Tick now,
                                 trace::SpanStatus &status);

    /** Count one aborted multi-partition transaction at this tier. */
    void noteTxnAbort();

    // -- Partitioned deployment (opt-in; see src/data/placement.hh) ----

    /**
     * Home shard of this tier in a partitioned world. Calls from a
     * tier with a different home cross the engine mailbox instead of
     * the local RPC path. 0 (everything colocated) until
     * `App::enablePartition` assigns the placement.
     */
    void setHomeShard(unsigned shard) { homeShard_ = shard; }
    unsigned homeShard() const { return homeShard_; }

    /**
     * Position of this tier in the app's service insertion order —
     * the tier's identity in cross-shard call marshalling (every
     * shard builds the identical graph, so the index resolves to the
     * same tier everywhere).
     */
    void setOrderIndex(unsigned index) { orderIndex_ = index; }
    unsigned orderIndex() const { return orderIndex_; }

    /**
     * Fault injection (Fig 22a): emulate a switch-routing
     * misconfiguration that funnels all of this tier's traffic to its
     * first instance instead of load balancing.
     */
    void setRouteMisconfigured(bool broken) { misrouted_ = broken; }
    bool routeMisconfigured() const { return misrouted_; }

    /** Server-side latency histogram over all requests served. */
    const Histogram &latency() const { return latency_; }
    Histogram &mutableLatency() { return latency_; }

    /** Tier-level recent-latency window (autoscaler input). */
    WindowedStat &latencyWindow() { return latencyWindow_; }

    /**
     * Change the per-instance worker-thread count. Must be called
     * while all instances are idle (e.g. right after building the
     * app); used by the serverless platform rewrite.
     */
    void setThreadsPerInstance(unsigned threads);

    /** Mean thread occupancy across active instances. */
    double meanOccupancy() const;

    /** Mean queue length across active instances. */
    double meanQueueLength() const;

    /** Mean in-flight RPCs across active instances (busy + queued). */
    double meanInFlight() const;

    /** Total drops across instances. */
    std::uint64_t totalDropped() const;

    // -- Measured execution-mode accounting (Fig 14) -------------------

    /** Charge cycles+instructions to an execution mode. */
    void chargeKernel(double cycles, double instructions);
    void chargeUser(double cycles, double instructions);
    void chargeLib(double cycles, double instructions);

    double kernelCycles() const { return kernelCycles_; }
    double userCycles() const { return userCycles_; }
    double libCycles() const { return libCycles_; }
    double kernelInstr() const { return kernelInstr_; }
    double userInstr() const { return userInstr_; }
    double libInstr() const { return libInstr_; }

  private:
    App &app_;
    ServiceDef def_;
    trace::ServiceId traceServiceId_ = trace::kNoService;
    std::vector<std::unique_ptr<Instance>> instances_;
    std::size_t rrCursor_ = 0;
    bool misrouted_ = false;
    unsigned homeShard_ = 0;
    unsigned orderIndex_ = 0;

    /** Apply owed replica-store maintenance to @p group's model. */
    void applyReplicaMaintenance(unsigned group, Tick now);

    /** Mirror ReplicaSet event counts into replica.<tier>.* metrics. */
    void syncReplicaMetrics();

    /** Consistent-hash placement (keyed mode only). */
    std::unique_ptr<data::ShardMap> shardMap_;
    /** Per-instance keyed stores, parallel to instances_. */
    std::vector<std::unique_ptr<data::CacheModel>> cacheModels_;
    data::CacheModelConfig cacheConfig_;
    /** Tier-level miss counter for lookups against downed shards. */
    Counter *unreachableMisses_ = nullptr;

    /** Replica-group state machine (null while unreplicated). */
    std::unique_ptr<replica::ReplicaSet> replicas_;
    /** Last mirrored snapshot of the replica event counts. */
    replica::ReplicaCounts mirrored_;
    /** replica.<tier>.* counters, created by enableReplication. */
    Counter *replStaleReads_ = nullptr;
    Counter *replStaleRejects_ = nullptr;
    Counter *replQuorumLost_ = nullptr;
    Counter *replRywRedirects_ = nullptr;
    Counter *replElections_ = nullptr;
    Counter *replFailovers_ = nullptr;
    Counter *replTrims_ = nullptr;
    Counter *replStoreLosses_ = nullptr;
    Counter *replTxnAborts_ = nullptr;

    Histogram latency_;
    WindowedStat latencyWindow_;

    double kernelCycles_ = 0.0, userCycles_ = 0.0, libCycles_ = 0.0;
    double kernelInstr_ = 0.0, userInstr_ = 0.0, libInstr_ = 0.0;
};

} // namespace uqsim::service

#endif // UQSIM_SERVICE_MICROSERVICE_HH
