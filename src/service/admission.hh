/**
 * @file
 * Server-side admission control with weighted QoS classes.
 *
 * The paper's Fig 19 shows the defining overload failure of
 * microservice graphs: once one tier saturates, queues grow without
 * bound, every request waits past its deadline and goodput collapses
 * instead of degrading. The client-side resilience layer (rpc/
 * resilience.hh) can reproduce that collapse but not the cure, because
 * services themselves accept every arrival. This module supplies the
 * server side: each instance gets a bounded per-class request queue
 * with weighted dequeue, a token-bucket throughput throttler, and
 * cost-based shedding that refuses cheap-to-refuse work at the door —
 * before it consumes service time.
 *
 * Requests are partitioned into three QoS classes (user-facing /
 * batch / best-effort) derived from their query type. Under overload
 * the controller sacrifices the classes in reverse priority order:
 * best-effort is refused first (lowest shed threshold, largest token
 * reserve), then batch, and user-facing work keeps most of the
 * capacity — graceful degradation instead of the cliff.
 *
 * Like the resilience layer, everything here is passive state advanced
 * lazily from the caller's clock: no object schedules simulator
 * events, decisions draw no randomness, and a disabled policy is never
 * consulted — so the legacy execution digest is preserved bit-for-bit
 * and enabled runs stay deterministic at any shard/thread count.
 */

#ifndef UQSIM_SERVICE_ADMISSION_HH
#define UQSIM_SERVICE_ADMISSION_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/types.hh"

namespace uqsim::service {

/**
 * Priority class of a request, derived from its query type. Order is
 * priority order: lower value = more important = refused last.
 */
enum class QosClass : std::uint8_t
{
    UserFacing = 0, ///< interactive traffic; shed only as a last resort
    Batch = 1,      ///< throughput work (feeds, analytics)
    BestEffort = 2, ///< prefetch/speculative; first against the wall
};

constexpr unsigned kQosClassCount = 3;

/** @return a short printable class name ("user-facing", ...). */
const char *qosClassName(QosClass c);

/** Resolve a class name; @return false if unknown. */
bool qosClassByName(const std::string &name, QosClass &out);

/**
 * Per-service admission policy (set on the ServiceDef, like the
 * protocol and the resilience policy). All defaults off: a ServiceDef
 * without an explicit policy keeps the legacy single-FIFO queue.
 */
struct AdmissionPolicy
{
    /** Master switch; nothing below is consulted while false. */
    bool enabled = false;

    /**
     * Weighted-round-robin dequeue credits per class. Per grant cycle
     * a backlogged class gets weights[c] of every
     * sum(weights-of-backlogged-classes) service slots.
     */
    std::array<unsigned, kQosClassCount> weights = {8, 2, 1};

    /**
     * Bounded per-class queue depth (0 = inherit the tier's
     * queueCapacity). Arrivals beyond the bound are refused with
     * Overflow — the hard backstop behind the shed thresholds.
     */
    unsigned classQueueCapacity = 0;

    /**
     * Token-bucket throughput throttle: admitted requests per second
     * per instance (0 = unlimited). Tokens refill lazily from the
     * arrival clock; every admitted request consumes one.
     */
    double ratePerInstance = 0.0;

    /** Token-bucket burst capacity (tokens). */
    double burst = 32.0;

    /**
     * Cost-based shed thresholds, as fractions of the per-class queue
     * bound applied to the *aggregate* backlog: class c is refused
     * with Shed once total queued work reaches shedAt[c] * bound.
     * Refusing at the door costs only the reply path, so the classes
     * whose refusal is cheapest (lowest priority, no retry pressure)
     * go first: best-effort at 25% backlog, batch at 50%, user-facing
     * only when the backlog reaches the full bound.
     */
    std::array<double, kQosClassCount> shedAt = {1.0, 0.5, 0.25};

    bool active() const { return enabled; }
};

/**
 * App-level QoS configuration: the policy applied to every tier plus
 * the query-type -> class assignment (query types not named in either
 * list stay user-facing).
 */
struct QosConfig
{
    AdmissionPolicy policy;
    std::vector<std::string> batchQueries;
    std::vector<std::string> bestEffortQueries;
};

/**
 * Deterministic token bucket, refilled lazily from the caller's clock
 * (never schedules events — same discipline as rpc::CircuitBreaker).
 */
class TokenBucket
{
  public:
    /** @p rate_per_sec tokens/s, clamped at @p burst. Starts full. */
    TokenBucket(double rate_per_sec, double burst);

    /** @return true while no rate is configured (always admits). */
    bool unlimited() const { return ratePerTick_ <= 0.0; }

    /** Tokens available at @p now (refills first). */
    double available(Tick now);

    /**
     * Admit one request at @p now if at least @p reserve tokens are
     * available; consumes exactly one token on success. A reserve
     * above 1.0 leaves headroom for higher-priority classes — the
     * priority mechanism of the throttler.
     */
    bool tryAcquire(Tick now, double reserve);

    /** Refit to a fresh process (restart): full bucket at @p now. */
    void reset(Tick now);

  private:
    void refill(Tick now);

    double ratePerTick_;
    double burst_;
    double tokens_;
    Tick last_ = 0;
};

/**
 * Token reserve a class must see before the throttler admits it:
 * user-facing takes the last token, batch keeps 25% of the burst in
 * reserve, best-effort 50%. Under sustained overload the bucket hovers
 * near empty, so low-priority classes are throttled first and the
 * reserved headroom is what keeps user-facing traffic flowing.
 */
double qosTokenReserve(const AdmissionPolicy &pol, QosClass c);

/** Outcome of one admission decision. */
enum class AdmissionVerdict : std::uint8_t
{
    Admit = 0,
    Throttled, ///< token bucket dry (for this class's reserve)
    Shed,      ///< backlog above the class's shed threshold
    Overflow,  ///< per-class queue bound reached
};

/**
 * Per-instance bounded multi-class queue with weighted-round-robin
 * dequeue. Header-only template so the instance's private Arrival
 * record can be stored without a dependency cycle; the closed-form
 * tests instantiate it with plain timestamps.
 *
 * Determinism: offer()/pop() are pure state machines over the caller's
 * clock — WRR credits instead of randomized selection, lazy bucket
 * refill instead of timer events.
 */
template <typename Item>
class AdmissionQueue
{
  public:
    /**
     * @p fallback_capacity is the tier's queueCapacity, used when the
     * policy does not bound classes explicitly. @p now seeds the token
     * bucket clock.
     */
    AdmissionQueue(const AdmissionPolicy &pol, unsigned fallback_capacity,
                   Tick now)
        : pol_(pol),
          capacity_(pol.classQueueCapacity ? pol.classQueueCapacity
                                           : fallback_capacity),
          bucket_(pol.ratePerInstance, pol.burst)
    {
        bucket_.reset(now);
    }

    /**
     * Decide admission for one class-@p c arrival at @p now: the
     * throttler first, then the hard per-class bound, then the
     * cost-based shed thresholds (aggregate backlog vs the class's
     * fraction of the bound — the check that fires earliest for the
     * low-priority classes). Only an Admit consumes a token; the
     * caller must follow it with push().
     */
    AdmissionVerdict
    offer(QosClass c, Tick now)
    {
        const auto idx = static_cast<std::size_t>(c);
        if (!bucket_.unlimited() &&
            !bucket_.tryAcquire(now, qosTokenReserve(pol_, c)))
            return AdmissionVerdict::Throttled;
        if (q_[idx].size() >= capacity_)
            return AdmissionVerdict::Overflow;
        if (total_ >= static_cast<std::size_t>(
                          pol_.shedAt[idx] *
                          static_cast<double>(capacity_)))
            return AdmissionVerdict::Shed;
        return AdmissionVerdict::Admit;
    }

    /** Enqueue an admitted arrival. */
    void
    push(QosClass c, Item item)
    {
        q_[static_cast<std::size_t>(c)].push_back(std::move(item));
        ++total_;
    }

    /**
     * Dequeue the next item by weighted round robin: each grant cycle
     * hands every class weights[c] credits; backlogged classes are
     * scanned in priority order and spend credits first-come. With
     * lopsided weights this degenerates to strict priority, which is
     * what the closed-form priority-queue test pins down.
     * @return false when empty.
     */
    bool
    pop(QosClass &cls, Item &out)
    {
        if (total_ == 0)
            return false;
        for (;;) {
            for (std::size_t c = 0; c < kQosClassCount; ++c) {
                if (q_[c].empty() || credit_[c] == 0)
                    continue;
                --credit_[c];
                cls = static_cast<QosClass>(c);
                out = std::move(q_[c].front());
                q_[c].pop_front();
                --total_;
                return true;
            }
            // Every backlogged class is out of credit: grant a fresh
            // cycle (unused credit does not accumulate).
            for (std::size_t c = 0; c < kQosClassCount; ++c)
                credit_[c] = pol_.weights[c];
        }
    }

    std::size_t size() const { return total_; }
    bool empty() const { return total_ == 0; }

    /** Queued items of one class right now. */
    std::size_t
    length(QosClass c) const
    {
        return q_[static_cast<std::size_t>(c)].size();
    }

    /** Effective per-class queue bound. */
    unsigned capacity() const { return capacity_; }

    /** Drop all queued work (crash path). */
    void
    clear()
    {
        for (auto &q : q_)
            q.clear();
        total_ = 0;
    }

    /** Fresh-process state: empty queues, full bucket (restart path). */
    void
    reset(Tick now)
    {
        clear();
        credit_ = {};
        bucket_.reset(now);
    }

  private:
    AdmissionPolicy pol_;
    unsigned capacity_;
    TokenBucket bucket_;
    std::array<std::deque<Item>, kQosClassCount> q_;
    std::array<unsigned, kQosClassCount> credit_{};
    std::size_t total_ = 0;
};

} // namespace uqsim::service

#endif // UQSIM_SERVICE_ADMISSION_HH
