/**
 * @file
 * Leader/follower replica groups over the keyed data tier.
 *
 * A replicated stateful tier of I instances forms I successor groups on
 * the existing consistent-hash ring: group g (the owner of ring shard
 * g's keys) is served by members {g, (g+1)%I, ..., (g+N-1)%I}, where
 * N = min(factor, I). Member position 0 is the initial leader; the
 * logical store of group g stays pinned to the tier's model slot g no
 * matter who leads, so a failover inherits the warm store instead of
 * the cold restart PR 5 gave a crashed shard.
 *
 * The group state machine is deterministic and *lazily advanced*: no
 * events are scheduled. Crashes/restarts and partition windows feed in
 * through onInstanceDown/Up/onTopologyChange; elections complete the
 * first time the group is consulted at or after electionEndsAt. Apply
 * lag is modelled deterministically — the member p ring-hops past the
 * leader trails the log head by applyLag*p — which yields three
 * emergent behaviours with zero randomness:
 *
 *  - a quorum write acks after the (W-1)-th fastest eligible follower
 *    has applied it (the write's quorumDelay);
 *  - a promoted follower's store is the leader's store minus the last
 *    applyLag*p of writes (the log-replay trim, CacheModel::
 *    dropWrittenAfter), so failover is a *warm* restart;
 *  - a follower read is stale by exactly its lag, which is what the
 *    read preferences trade against availability.
 *
 * When the eligible-member count falls below the write quorum the
 * group degrades to typed QuorumLost rejects — never hangs — and the
 * client-side retry budget (PR 3) decides how hard to push.
 */

#ifndef UQSIM_REPLICA_REPLICATION_HH
#define UQSIM_REPLICA_REPLICATION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/types.hh"

namespace uqsim::replica {

/** Which member serves a replicated read. */
enum class ReadPreference
{
    Leader,        ///< always the leader: fresh, but election-blind
    Nearest,       ///< deterministic member by key: available, stale
    ReadYourWrites,///< follower unless a recent write demands the leader
};

const char *readPreferenceName(ReadPreference p);
bool readPreferenceByName(const std::string &name, ReadPreference &out);

/** Configuration of one tier's replication layer. */
struct ReplicationConfig
{
    /** Replicas per group, leader included (>= 2 to enable). */
    unsigned factor = 3;

    /**
     * Write quorum W: acks (leader + followers) a write needs.
     * 0 = majority of factor. Also the election quorum: a leader is
     * only elected from a connected component of at least W eligible
     * members, which keeps split-brain impossible by construction.
     */
    unsigned writeQuorum = 0;

    /** Apply lag per ring hop: member p trails the head by p*this. */
    Tick applyLag = 1 * kTicksPerMs;

    /** Leaderless window after a depose before promotion completes. */
    Tick electionTimeout = 50 * kTicksPerMs;

    /** Log catch-up time a restarted member needs to become eligible. */
    Tick catchUp = 100 * kTicksPerMs;

    ReadPreference readPreference = ReadPreference::Leader;

    /**
     * Keys touched by one multi-partition transaction (>= 2 enables
     * 2PC on write-tagged keyed stages; 0/1 = plain single-key writes).
     */
    unsigned txnKeys = 0;

    /** Coordinator deadline on the 2PC prepare phase. */
    Tick txnPrepareTimeout = 10 * kTicksPerMs;

    bool enabled() const { return factor >= 2; }
    unsigned quorum() const
    {
        return writeQuorum ? writeQuorum : factor / 2 + 1;
    }
    bool txnEnabled() const { return txnKeys >= 2; }
};

/** Typed outcome of a replicated route decision. */
enum class Verdict
{
    Ok,
    QuorumLost,  ///< below write/election quorum: typed fast reject
    StaleRead,   ///< freshness requirement unsatisfiable right now
    Unreachable, ///< every member of the group is down
};

/** Where (and how) one keyed access is served. */
struct RouteDecision
{
    Verdict verdict = Verdict::Ok;

    /** Serving instance index (valid when verdict == Ok). */
    unsigned instance = 0;

    /** Read served by a lagging member (possibly stale data). */
    bool stale = false;

    /** Read-your-writes bounced this read to the leader. */
    bool redirected = false;

    /** Write: simulated wait until the W-th ack (0 for reads). */
    Tick quorumDelay = 0;
};

/** Store maintenance owed by the service before the next access. */
struct Maintenance
{
    /** Group lost every member: the logical store is gone. */
    bool clearStore = false;

    /** Failover happened: drop entries written after trimCutoff. */
    bool trim = false;
    Tick trimCutoff = 0;
};

/** One promotion: exactly one leader per term, by construction. */
struct TermRecord
{
    std::uint64_t term = 0;
    unsigned leader = 0; ///< instance index
};

/**
 * Link oracle between two instances of the tier; true = severed.
 * Evaluated at decision time so partition windows need no scheduling.
 */
using SeveredFn = std::function<bool(unsigned a, unsigned b)>;

/** Internal event accounting (mirrored into metrics by the service). */
struct ReplicaCounts
{
    std::uint64_t staleReads = 0;
    std::uint64_t rywRedirects = 0;
    std::uint64_t quorumLostWrites = 0;
    std::uint64_t quorumLostReads = 0;
    std::uint64_t staleRejects = 0;
    std::uint64_t electionsStarted = 0;
    std::uint64_t failovers = 0;
    std::uint64_t catchUps = 0;
    std::uint64_t trims = 0;
    std::uint64_t storeLosses = 0;
};

/**
 * The replica-group state machine of one stateful tier.
 */
class ReplicaSet
{
  public:
    /** @param instances tier instance count (= group count). */
    ReplicaSet(ReplicationConfig cfg, unsigned instances);

    const ReplicationConfig &config() const { return cfg_; }

    /** Groups (one per ring shard / tier instance). */
    unsigned groups() const { return instances_; }

    /** Members per group, N = min(factor, instances). */
    unsigned replicas() const { return n_; }

    /** Effective quorum, clamped into [1, replicas()]. */
    unsigned quorum() const { return quorum_; }

    /** Instance index of group @p group's member at position @p pos. */
    unsigned memberAt(unsigned group, unsigned pos) const
    {
        return (group + pos) % instances_;
    }

    /** Install the partition link oracle (null = fully connected). */
    void setSevered(SeveredFn fn) { severed_ = std::move(fn); }

    // -- Lifecycle events (crash schedule / topology) ----------------

    void onInstanceDown(unsigned inst, Tick now);
    void onInstanceUp(unsigned inst, Tick now);

    /** Re-examine sitting leaders after a connectivity change. */
    void onTopologyChange(Tick now);

    // -- Routing -----------------------------------------------------

    /**
     * Collect (and clear) store maintenance owed for @p group. Call —
     * and apply to the group's store — before serving any access.
     */
    Maintenance poll(unsigned group, Tick now);

    /**
     * Decide who serves one keyed access against @p group. The
     * service resolves twice per access — once at stage time (store
     * semantics) and once at attempt time (instance addressing) —
     * so the second resolution passes @p count = false to keep the
     * event counts per-access, not per-resolution.
     */
    RouteDecision route(unsigned group, std::uint64_t key, bool write,
                        Tick now, bool count = true);

    /** Note a successful quorum write (read-your-writes bookkeeping). */
    void recordWrite(unsigned group, Tick now);

    // -- Introspection ----------------------------------------------

    /** Current leader instance of @p group, or -1 mid-election. */
    int leaderOf(unsigned group, Tick now);

    std::uint64_t termOf(unsigned group) const;

    /** Promotion history; term 1 is the initial leader. */
    const std::vector<TermRecord> &history(unsigned group) const;

    /** True while every member of @p group is down. */
    bool dead(unsigned group) const;

    /**
     * Staleness bound of @p group right now: the election gap while
     * leaderless, else the worst eligible-follower lag.
     */
    Tick stalenessBound(unsigned group, Tick now) const;

    /** Max staleness bound over all groups (the obs series value). */
    Tick maxStalenessBound(Tick now) const;

    const ReplicaCounts &counts() const { return counts_; }

  private:
    struct Member
    {
        bool up = true;
        /** Restarted members replay the log until here. */
        Tick catchUpUntil = 0;
    };

    struct Group
    {
        /** Leader position within the group, -1 while leaderless. */
        int leaderPos = 0;
        int prevLeaderPos = 0;
        std::uint64_t term = 1;
        Tick electionEndsAt = 0;
        Tick deposedAt = 0;
        bool dead = false;
        bool hasWrite = false;
        Tick lastWriteAt = 0;
        bool clearPending = false;
        bool trimPending = false;
        Tick trimCutoff = 0;
        std::vector<TermRecord> history;
    };

    /** Ring distance of @p pos past the current leader. */
    Tick lagOf(const Group &g, unsigned pos) const;
    bool connected(unsigned a, unsigned b) const;
    bool eligibleAt(unsigned group, unsigned pos, Tick now) const;
    void depose(unsigned group, Tick now);
    /** Complete a due election (lazy; no-op while quorum is absent). */
    void advance(unsigned group, Tick now);

    ReplicationConfig cfg_;
    unsigned instances_;
    unsigned n_;
    unsigned quorum_;
    SeveredFn severed_;
    std::vector<Member> members_;
    std::vector<Group> groups_;
    ReplicaCounts counts_;
};

} // namespace uqsim::replica

#endif // UQSIM_REPLICA_REPLICATION_HH
