#include "replica/replication.hh"

#include <algorithm>

#include "core/logging.hh"
#include "data/shard_map.hh"

namespace uqsim::replica {

namespace {

/** Salt so the nearest-member pick never correlates with shard owner. */
constexpr std::uint64_t kNearestSalt = 0x5245504c49434153ull;

} // namespace

const char *
readPreferenceName(ReadPreference p)
{
    switch (p) {
      case ReadPreference::Leader:
        return "leader";
      case ReadPreference::Nearest:
        return "nearest";
      case ReadPreference::ReadYourWrites:
        return "read-your-writes";
    }
    return "unknown";
}

bool
readPreferenceByName(const std::string &name, ReadPreference &out)
{
    if (name == "leader")
        out = ReadPreference::Leader;
    else if (name == "nearest")
        out = ReadPreference::Nearest;
    else if (name == "read-your-writes" || name == "ryw")
        out = ReadPreference::ReadYourWrites;
    else
        return false;
    return true;
}

ReplicaSet::ReplicaSet(ReplicationConfig cfg, unsigned instances)
    : cfg_(cfg), instances_(instances)
{
    if (instances_ == 0)
        fatal("ReplicaSet over zero instances");
    if (!cfg_.enabled())
        fatal("ReplicaSet with factor < 2");
    if (cfg_.writeQuorum > cfg_.factor)
        fatal("replica write quorum exceeds the replication factor");
    n_ = std::min(cfg_.factor, instances_);
    quorum_ = std::max(1u, std::min(cfg_.quorum(), n_));
    members_.resize(instances_);
    groups_.resize(instances_);
    for (unsigned g = 0; g < instances_; ++g) {
        groups_[g].history.push_back({1, memberAt(g, 0)});
    }
}

Tick
ReplicaSet::lagOf(const Group &g, unsigned pos) const
{
    const unsigned lead =
        g.leaderPos >= 0 ? static_cast<unsigned>(g.leaderPos) : 0u;
    const unsigned dist = (pos + n_ - lead) % n_;
    return cfg_.applyLag * dist;
}

bool
ReplicaSet::connected(unsigned a, unsigned b) const
{
    return a == b || !severed_ || !severed_(a, b);
}

bool
ReplicaSet::eligibleAt(unsigned group, unsigned pos, Tick now) const
{
    const Member &m = members_[memberAt(group, pos)];
    return m.up && m.catchUpUntil <= now;
}

void
ReplicaSet::depose(unsigned group, Tick now)
{
    Group &g = groups_[group];
    g.prevLeaderPos = g.leaderPos;
    g.leaderPos = -1;
    g.electionEndsAt = now + cfg_.electionTimeout;
    g.deposedAt = now;
    ++counts_.electionsStarted;
}

void
ReplicaSet::advance(unsigned group, Tick now)
{
    Group &g = groups_[group];
    if (g.dead || g.leaderPos >= 0 || now < g.electionEndsAt)
        return;

    // Candidates: up, caught-up members. A leader is promoted only out
    // of the largest connected component among them, and only when
    // that component reaches the quorum — the minority side of a
    // partition can never crown a second leader, so one-leader-per-term
    // holds by construction.
    std::vector<unsigned> cand;
    for (unsigned p = 0; p < n_; ++p)
        if (eligibleAt(group, p, now))
            cand.push_back(p);
    if (cand.empty())
        return;

    std::vector<int> comp(cand.size(), -1);
    int comps = 0;
    for (std::size_t i = 0; i < cand.size(); ++i) {
        if (comp[i] >= 0)
            continue;
        comp[i] = comps;
        // Flood fill over the (tiny) candidate set.
        std::vector<std::size_t> stack{i};
        while (!stack.empty()) {
            const std::size_t cur = stack.back();
            stack.pop_back();
            for (std::size_t j = 0; j < cand.size(); ++j) {
                if (comp[j] >= 0)
                    continue;
                if (connected(memberAt(group, cand[cur]),
                              memberAt(group, cand[j]))) {
                    comp[j] = comps;
                    stack.push_back(j);
                }
            }
        }
        ++comps;
    }
    // Largest component; ties go to the one holding the lowest
    // position (components are discovered in position order, so the
    // first maximal one wins).
    int best = -1;
    std::size_t best_size = 0;
    for (int c = 0; c < comps; ++c) {
        const std::size_t size = static_cast<std::size_t>(
            std::count(comp.begin(), comp.end(), c));
        if (size > best_size) {
            best = c;
            best_size = size;
        }
    }
    if (best_size < quorum_)
        return;

    unsigned promoted = 0;
    for (std::size_t i = 0; i < cand.size(); ++i) {
        if (comp[i] == best) {
            promoted = cand[i]; // lowest position = most caught-up
            break;
        }
    }
    g.leaderPos = static_cast<int>(promoted);
    ++g.term;
    g.history.push_back({g.term, memberAt(group, promoted)});
    ++counts_.failovers;

    // Log-replay trim: the promoted member had applied the log only up
    // to deposedAt minus its lag behind the deposed leader. Everything
    // younger is the un-replicated tail and must leave the store.
    const unsigned prev = g.prevLeaderPos >= 0
                              ? static_cast<unsigned>(g.prevLeaderPos)
                              : 0u;
    const unsigned dist = (promoted + n_ - prev) % n_;
    if (dist > 0) {
        const Tick tail = cfg_.applyLag * dist;
        g.trimPending = true;
        g.trimCutoff = g.deposedAt > tail ? g.deposedAt - tail : 0;
        ++counts_.trims;
    }
}

void
ReplicaSet::onInstanceDown(unsigned inst, Tick now)
{
    if (inst >= instances_)
        fatal("ReplicaSet::onInstanceDown out of range");
    members_[inst].up = false;
    for (unsigned p = 0; p < n_; ++p) {
        const unsigned group = (inst + instances_ - p) % instances_;
        Group &g = groups_[group];
        if (g.dead)
            continue;
        bool any_up = false;
        for (unsigned q = 0; q < n_; ++q)
            if (members_[memberAt(group, q)].up)
                any_up = true;
        if (!any_up) {
            // The whole group died: its data is gone for real, the
            // same total loss an unreplicated shard suffers.
            g.dead = true;
            g.clearPending = true;
            g.trimPending = false;
            g.prevLeaderPos = g.leaderPos;
            g.leaderPos = -1;
            ++counts_.storeLosses;
            continue;
        }
        if (g.leaderPos == static_cast<int>(p))
            depose(group, now);
    }
}

void
ReplicaSet::onInstanceUp(unsigned inst, Tick now)
{
    if (inst >= instances_)
        fatal("ReplicaSet::onInstanceUp out of range");
    members_[inst].up = true;
    members_[inst].catchUpUntil = now + cfg_.catchUp;
    ++counts_.catchUps;
    for (unsigned p = 0; p < n_; ++p) {
        const unsigned group = (inst + instances_ - p) % instances_;
        Group &g = groups_[group];
        if (!g.dead)
            continue;
        // First member back after total loss: the group revives around
        // an empty store (clearPending still owed) and elects afresh.
        g.dead = false;
        g.hasWrite = false;
        depose(group, now);
    }
}

void
ReplicaSet::onTopologyChange(Tick now)
{
    for (unsigned group = 0; group < instances_; ++group) {
        Group &g = groups_[group];
        if (g.dead || g.leaderPos < 0)
            continue;
        const unsigned lead =
            memberAt(group, static_cast<unsigned>(g.leaderPos));
        unsigned reach = 0;
        for (unsigned p = 0; p < n_; ++p)
            if (eligibleAt(group, p, now) &&
                connected(lead, memberAt(group, p)))
                ++reach;
        // A leader cut off from its quorum steps down; the majority
        // side elects a successor after the election timeout.
        if (reach < quorum_)
            depose(group, now);
    }
}

Maintenance
ReplicaSet::poll(unsigned group, Tick now)
{
    advance(group, now);
    Group &g = groups_[group];
    Maintenance m;
    m.clearStore = g.clearPending;
    m.trim = g.trimPending;
    m.trimCutoff = g.trimCutoff;
    g.clearPending = false;
    g.trimPending = false;
    return m;
}

RouteDecision
ReplicaSet::route(unsigned group, std::uint64_t key, bool write,
                  Tick now, bool count)
{
    if (group >= instances_)
        fatal("ReplicaSet::route out of range");
    advance(group, now);
    Group &g = groups_[group];
    RouteDecision d;
    if (g.dead) {
        d.verdict = Verdict::Unreachable;
        return d;
    }

    if (write) {
        if (g.leaderPos < 0) {
            if (count)
                ++counts_.quorumLostWrites;
            d.verdict = Verdict::QuorumLost;
            return d;
        }
        // Eligible ack set: the leader plus every up, caught-up
        // follower it can reach. Deterministic per-position lags make
        // the quorum delay the (W-1)-th fastest follower's lag.
        const unsigned lead =
            memberAt(group, static_cast<unsigned>(g.leaderPos));
        std::vector<Tick> lags;
        for (unsigned p = 0; p < n_; ++p) {
            if (static_cast<int>(p) == g.leaderPos)
                continue;
            if (eligibleAt(group, p, now) &&
                connected(lead, memberAt(group, p)))
                lags.push_back(lagOf(g, p));
        }
        if (1 + lags.size() < quorum_) {
            if (count)
                ++counts_.quorumLostWrites;
            d.verdict = Verdict::QuorumLost;
            return d;
        }
        std::sort(lags.begin(), lags.end());
        d.instance = lead;
        d.quorumDelay = quorum_ >= 2 ? lags[quorum_ - 2] : 0;
        return d;
    }

    // Reads. Serving candidates: up, caught-up members in position
    // order (the leader, when present, is candidates[leaderPos slot]).
    std::vector<unsigned> cand;
    for (unsigned p = 0; p < n_; ++p)
        if (eligibleAt(group, p, now))
            cand.push_back(p);

    switch (cfg_.readPreference) {
      case ReadPreference::Leader: {
        if (g.leaderPos < 0) {
            if (count)
                ++counts_.quorumLostReads;
            d.verdict = Verdict::QuorumLost;
            return d;
        }
        d.instance = memberAt(group, static_cast<unsigned>(g.leaderPos));
        return d;
      }
      case ReadPreference::Nearest: {
        if (cand.empty()) {
            if (count)
                ++counts_.quorumLostReads;
            d.verdict = Verdict::QuorumLost;
            return d;
        }
        const unsigned pick = cand[data::mixKey(key ^ kNearestSalt) %
                                   cand.size()];
        d.instance = memberAt(group, pick);
        // Anything but the sitting leader may serve lagged data; this
        // is the availability-for-freshness trade the preference buys
        // (reads keep flowing right through an election).
        d.stale = g.leaderPos < 0 ||
                  pick != static_cast<unsigned>(g.leaderPos);
        if (d.stale && count)
            ++counts_.staleReads;
        return d;
      }
      case ReadPreference::ReadYourWrites: {
        if (cand.empty()) {
            if (count)
                ++counts_.quorumLostReads;
            d.verdict = Verdict::QuorumLost;
            return d;
        }
        const unsigned pick = cand[data::mixKey(key ^ kNearestSalt) %
                                   cand.size()];
        if (g.leaderPos < 0) {
            // Mid-election there is no fresh copy to redirect to. A
            // recent write makes freshness unsatisfiable: typed reject
            // (retryable — the election will finish). Old data is
            // safely replicated everywhere and can be served.
            const Tick bound = cfg_.applyLag * (n_ - 1);
            if (g.hasWrite && now < g.lastWriteAt + bound +
                                        (now - g.deposedAt)) {
                if (count)
                    ++counts_.staleRejects;
                d.verdict = Verdict::StaleRead;
                return d;
            }
            d.instance = memberAt(group, pick);
            d.stale = true;
            if (count)
                ++counts_.staleReads;
            return d;
        }
        const bool fresh_needed =
            g.hasWrite && now < g.lastWriteAt + lagOf(g, pick);
        if (fresh_needed &&
            pick != static_cast<unsigned>(g.leaderPos)) {
            d.instance =
                memberAt(group, static_cast<unsigned>(g.leaderPos));
            d.redirected = true;
            if (count)
                ++counts_.rywRedirects;
            return d;
        }
        d.instance = memberAt(group, pick);
        return d;
      }
    }
    fatal("unhandled read preference");
}

void
ReplicaSet::recordWrite(unsigned group, Tick now)
{
    Group &g = groups_[group];
    g.hasWrite = true;
    g.lastWriteAt = now;
}

int
ReplicaSet::leaderOf(unsigned group, Tick now)
{
    advance(group, now);
    const Group &g = groups_[group];
    if (g.leaderPos < 0)
        return -1;
    return static_cast<int>(
        memberAt(group, static_cast<unsigned>(g.leaderPos)));
}

std::uint64_t
ReplicaSet::termOf(unsigned group) const
{
    return groups_[group].term;
}

const std::vector<TermRecord> &
ReplicaSet::history(unsigned group) const
{
    return groups_[group].history;
}

bool
ReplicaSet::dead(unsigned group) const
{
    return groups_[group].dead;
}

Tick
ReplicaSet::stalenessBound(unsigned group, Tick now) const
{
    const Group &g = groups_[group];
    if (g.dead)
        return 0;
    if (g.leaderPos < 0)
        return now - g.deposedAt; // election gap: nobody applies
    Tick worst = 0;
    for (unsigned p = 0; p < n_; ++p) {
        if (static_cast<int>(p) == g.leaderPos)
            continue;
        if (eligibleAt(group, p, now))
            worst = std::max(worst, lagOf(g, p));
    }
    return worst;
}

Tick
ReplicaSet::maxStalenessBound(Tick now) const
{
    Tick worst = 0;
    for (unsigned g = 0; g < instances_; ++g)
        worst = std::max(worst, stalenessBound(g, now));
    return worst;
}

} // namespace uqsim::replica
