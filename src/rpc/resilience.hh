/**
 * @file
 * Client-side resilience policies: deadlines, retries with budgets,
 * and a rolling-window circuit breaker.
 *
 * The paper's failure studies (Figs 17, 19, 20) are all *propagation*
 * stories: one slow or failed tier amplifies through naive clients.
 * This module supplies the standard production countermeasures —
 * bounded retries with exponential backoff + jitter, a per-service
 * retry *budget* (token bucket earning a fraction of successful
 * traffic) that caps the retry amplification factor, and a circuit
 * breaker per caller→callee pair that converts a failing dependency
 * into fast local failures until a cooldown passes.
 *
 * Everything here is passive state interrogated by the RPC layer: no
 * object schedules simulator events, so an inactive policy cannot
 * perturb the execution digest.
 */

#ifndef UQSIM_RPC_RESILIENCE_HH
#define UQSIM_RPC_RESILIENCE_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace uqsim::rpc {

/**
 * Retry discipline for calls *to* one service (set on the callee's
 * ServiceDef, like the protocol).
 */
struct RetryPolicy
{
    /** Total attempts including the first (1 = no retries). */
    unsigned maxAttempts = 1;

    /** Backoff before retry k (1-based): base * 2^(k-1), capped. */
    Tick baseBackoff = 1 * kTicksPerMs;
    Tick maxBackoff = 100 * kTicksPerMs;

    /**
     * Jitter fraction in [0,1]: the actual backoff is drawn uniformly
     * from [(1-jitter)*b, b]. Decorrelates synchronized retry waves.
     */
    double jitter = 0.5;

    /**
     * Retry-budget earn rate: every first attempt deposits this many
     * tokens, every retry withdraws one. 0 disables the budget (naive
     * unbounded-amplification retries — the storm regime).
     */
    double budgetRatio = 0.0;

    /** Token-bucket cap (burst allowance). */
    double budgetCap = 100.0;

    bool enabled() const { return maxAttempts > 1; }
};

/**
 * Token-bucket retry budget: retries may consume at most
 * budgetRatio of the first-attempt rate (plus the initial burst).
 */
class RetryBudget
{
  public:
    RetryBudget(double ratio, double cap)
        : ratio_(ratio), cap_(cap), tokens_(cap)
    {}

    /** Account one first attempt (earns ratio tokens). */
    void
    onAttempt()
    {
        tokens_ = tokens_ + ratio_ > cap_ ? cap_ : tokens_ + ratio_;
    }

    /** Try to pay for one retry. @return false if the budget is dry. */
    bool
    tryWithdraw()
    {
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    double tokens() const { return tokens_; }

  private:
    double ratio_;
    double cap_;
    double tokens_;
};

/** Circuit-breaker tuning for calls *to* one service. */
struct BreakerPolicy
{
    bool enabled = false;

    /** Rolling window over which failure rate is measured. */
    Tick window = 1 * kTicksPerSec;

    /** Number of rotating sub-buckets in the window. */
    unsigned buckets = 10;

    /** Failure fraction that trips the breaker. */
    double failureThreshold = 0.5;

    /** Minimum calls in the window before the rate is meaningful. */
    std::uint64_t minVolume = 10;

    /** Open-state duration before probing resumes. */
    Tick cooldown = 500 * kTicksPerMs;

    /** Concurrent probe calls allowed while half-open. */
    unsigned halfOpenProbes = 1;
};

/**
 * Rolling-window circuit breaker for one caller→callee pair.
 *
 * Closed: calls pass, outcomes recorded in rotating time buckets.
 * When the windowed failure rate crosses the threshold (with minimum
 * volume), the breaker opens: calls fail fast for `cooldown`. It then
 * half-opens, letting a bounded number of probes through; one success
 * closes it, one failure re-opens it.
 *
 * State advances lazily inside allow()/record() from the caller's
 * clock — the breaker never schedules events of its own.
 */
class CircuitBreaker
{
  public:
    enum class State : std::uint8_t
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(BreakerPolicy policy);

    /**
     * Gate one call at time @p now. A true return in HalfOpen state
     * reserves a probe slot; report its outcome through record().
     */
    bool allow(Tick now);

    /** Record an attempt outcome at time @p now. */
    void record(Tick now, bool success);

    State state() const { return state_; }
    std::uint64_t timesOpened() const { return timesOpened_; }

    /** Windowed failure rate (diagnostic). */
    double failureRate(Tick now);

  private:
    struct Bucket
    {
        std::uint64_t success = 0;
        std::uint64_t failure = 0;
    };

    /** Rotate buckets so that current covers @p now. */
    void advance(Tick now);

    void transition(State next, Tick now);

    std::uint64_t windowSuccess() const;
    std::uint64_t windowFailure() const;

    BreakerPolicy pol_;
    Tick bucketWidth_;
    std::vector<Bucket> buckets_;
    std::size_t current_ = 0;
    /** Start tick of the current bucket. */
    Tick currentStart_ = 0;
    State state_ = State::Closed;
    Tick openedAt_ = 0;
    unsigned probesInFlight_ = 0;
    std::uint64_t timesOpened_ = 0;
};

/**
 * Per-callee resilience configuration, applied to every caller of the
 * service that carries it. All defaults off: a ServiceDef without an
 * explicit policy behaves exactly as before this layer existed.
 */
struct ResiliencePolicy
{
    /** Per-attempt RPC timeout (0 = none). Covers pool wait. */
    Tick timeout = 0;

    /** Connection-pool acquire timeout (0 = wait forever). */
    Tick acquireTimeout = 0;

    /**
     * Load shedding: refuse arrivals once the instance queue reaches
     * this depth (0 = off). Refusals are retryable errors, unlike the
     * silent tail-drop at queueCapacity.
     */
    unsigned shedQueueLength = 0;

    RetryPolicy retry;
    BreakerPolicy breaker;

    /** @return true if any mechanism is configured. */
    bool
    active() const
    {
        return timeout > 0 || acquireTimeout > 0 || shedQueueLength > 0 ||
               retry.enabled() || breaker.enabled;
    }
};

} // namespace uqsim::rpc

#endif // UQSIM_RPC_RESILIENCE_HH
