#include "rpc/resilience.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::rpc {

CircuitBreaker::CircuitBreaker(BreakerPolicy policy) : pol_(policy)
{
    if (pol_.buckets == 0)
        fatal("CircuitBreaker with zero buckets");
    if (pol_.window == 0)
        fatal("CircuitBreaker with zero window");
    bucketWidth_ = std::max<Tick>(1, pol_.window / pol_.buckets);
    buckets_.resize(pol_.buckets);
}

void
CircuitBreaker::advance(Tick now)
{
    if (now < currentStart_ + bucketWidth_)
        return;
    // Rotate forward; clear every bucket we step over. A long quiet
    // period clears the whole window in at most `buckets` steps.
    const std::uint64_t steps =
        std::min<std::uint64_t>((now - currentStart_) / bucketWidth_,
                                buckets_.size());
    for (std::uint64_t i = 0; i < steps; ++i) {
        current_ = (current_ + 1) % buckets_.size();
        buckets_[current_] = Bucket{};
    }
    // Snap the bucket origin so it always covers `now`.
    currentStart_ = now - (now % bucketWidth_);
}

std::uint64_t
CircuitBreaker::windowSuccess() const
{
    std::uint64_t n = 0;
    for (const Bucket &b : buckets_)
        n += b.success;
    return n;
}

std::uint64_t
CircuitBreaker::windowFailure() const
{
    std::uint64_t n = 0;
    for (const Bucket &b : buckets_)
        n += b.failure;
    return n;
}

double
CircuitBreaker::failureRate(Tick now)
{
    advance(now);
    const std::uint64_t s = windowSuccess();
    const std::uint64_t f = windowFailure();
    const std::uint64_t total = s + f;
    return total ? static_cast<double>(f) / static_cast<double>(total)
                 : 0.0;
}

void
CircuitBreaker::transition(State next, Tick now)
{
    state_ = next;
    if (next == State::Open) {
        openedAt_ = now;
        ++timesOpened_;
    } else if (next == State::Closed) {
        // Fresh start: past failures must not instantly re-trip.
        for (Bucket &b : buckets_)
            b = Bucket{};
    }
    probesInFlight_ = 0;
}

bool
CircuitBreaker::allow(Tick now)
{
    if (!pol_.enabled)
        return true;
    advance(now);
    switch (state_) {
      case State::Closed:
        return true;
      case State::Open:
        if (now < openedAt_ + pol_.cooldown)
            return false;
        transition(State::HalfOpen, now);
        [[fallthrough]];
      case State::HalfOpen:
        if (probesInFlight_ >= pol_.halfOpenProbes)
            return false;
        ++probesInFlight_;
        return true;
    }
    return true;
}

void
CircuitBreaker::record(Tick now, bool success)
{
    if (!pol_.enabled)
        return;
    advance(now);

    if (state_ == State::HalfOpen) {
        if (probesInFlight_ > 0)
            --probesInFlight_;
        // One probe decides: success closes, failure re-opens.
        transition(success ? State::Closed : State::Open, now);
        if (success) {
            Bucket &b = buckets_[current_];
            ++b.success;
        }
        return;
    }

    Bucket &b = buckets_[current_];
    if (success)
        ++b.success;
    else
        ++b.failure;

    if (state_ == State::Closed && !success) {
        const std::uint64_t s = windowSuccess();
        const std::uint64_t f = windowFailure();
        if (s + f >= pol_.minVolume &&
            static_cast<double>(f) / static_cast<double>(s + f) >=
                pol_.failureThreshold)
            transition(State::Open, now);
    }
}

} // namespace uqsim::rpc
