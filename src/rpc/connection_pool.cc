#include "rpc/connection_pool.hh"

#include <algorithm>
#include <utility>

#include "core/logging.hh"
#include "core/stats.hh"

namespace uqsim::rpc {

ConnectionPool::ConnectionPool(unsigned max_connections, bool blocking,
                               Counter *blocked)
    : maxConnections_(max_connections), blocking_(blocking),
      blockedMetric_(blocked)
{
    if (blocking && max_connections == 0)
        fatal("blocking ConnectionPool needs at least one connection");
}

void
ConnectionPool::acquire(std::function<void()> granted)
{
    if (!blocking_) {
        ++inUse_;
        granted();
        return;
    }
    if (inUse_ < maxConnections_) {
        ++inUse_;
        granted();
        return;
    }
    ++blockedAcquires_;
    if (blockedMetric_)
        blockedMetric_->inc();
    waiters_.push_back(std::move(granted));
    peakWaiting_ = std::max(peakWaiting_, waiters_.size());
}

void
ConnectionPool::release()
{
    if (inUse_ == 0)
        panic("ConnectionPool::release with no connection in use");
    if (blocking_ && !waiters_.empty()) {
        // Hand the connection straight to the next waiter.
        auto granted = std::move(waiters_.front());
        waiters_.pop_front();
        granted();
        return;
    }
    --inUse_;
}

} // namespace uqsim::rpc
