#include "rpc/connection_pool.hh"

#include <algorithm>
#include <utility>

#include "core/logging.hh"
#include "core/stats.hh"

namespace uqsim::rpc {

ConnectionPool::ConnectionPool(unsigned max_connections, bool blocking,
                               Counter *blocked)
    : maxConnections_(max_connections), blocking_(blocking),
      blockedMetric_(blocked)
{
    if (blocking && max_connections == 0)
        fatal("blocking ConnectionPool needs at least one connection");
}

ConnectionPool::Ticket
ConnectionPool::acquire(std::function<void()> granted)
{
    if (!blocking_) {
        ++inUse_;
        granted();
        return kGrantedImmediately;
    }
    if (inUse_ < maxConnections_) {
        ++inUse_;
        granted();
        return kGrantedImmediately;
    }
    ++blockedAcquires_;
    if (blockedMetric_)
        blockedMetric_->inc();
    const Ticket t = nextTicket_++;
    waiters_.push_back(Waiter{t, std::move(granted)});
    peakWaiting_ = std::max(peakWaiting_, waiters_.size());
    return t;
}

bool
ConnectionPool::cancel(Ticket ticket)
{
    if (ticket == kGrantedImmediately)
        return false;
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
        if (it->ticket == ticket) {
            waiters_.erase(it);
            return true;
        }
    }
    return false;
}

void
ConnectionPool::release()
{
    if (inUse_ == 0)
        panic("ConnectionPool::release with no connection in use");
    if (blocking_ && !waiters_.empty()) {
        // Hand the connection straight to the next waiter. The grant
        // may reenter acquire()/release() on this pool synchronously,
        // so detach the waiter entry before invoking it.
        auto granted = std::move(waiters_.front().granted);
        waiters_.pop_front();
        granted();
        return;
    }
    --inUse_;
}

} // namespace uqsim::rpc
