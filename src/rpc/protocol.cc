#include "rpc/protocol.hh"

namespace uqsim::rpc {

std::string
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::ThriftRpc:
        return "Thrift-RPC";
      case ProtocolKind::Grpc:
        return "gRPC";
      case ProtocolKind::RestHttp1:
        return "REST/HTTP1";
    }
    return "unknown";
}

Cycles
ProtocolModel::serializeCost(Bytes payload) const
{
    const double cycles =
        (static_cast<double>(serializeBaseCycles) +
         perByteCycles * static_cast<double>(payload)) /
        serializationEfficiency;
    return static_cast<Cycles>(cycles);
}

Cycles
ProtocolModel::deserializeCost(Bytes payload) const
{
    const double cycles =
        (static_cast<double>(deserializeBaseCycles) +
         perByteCycles * static_cast<double>(payload)) /
        serializationEfficiency;
    return static_cast<Cycles>(cycles);
}

ProtocolModel
ProtocolModel::thrift()
{
    ProtocolModel m;
    m.kind = ProtocolKind::ThriftRpc;
    m.framingBytes = 64;
    m.serializeBaseCycles = 3000;
    m.deserializeBaseCycles = 3500;
    m.perByteCycles = 0.2;
    m.connectionBlocking = false;
    m.connectionsPerPair = 8;
    m.serializationEfficiency = 1.0;
    return m;
}

ProtocolModel
ProtocolModel::grpc()
{
    ProtocolModel m;
    m.kind = ProtocolKind::Grpc;
    m.framingBytes = 128;
    m.serializeBaseCycles = 3500;
    m.deserializeBaseCycles = 4000;
    m.perByteCycles = 0.25;
    m.connectionBlocking = false;
    m.connectionsPerPair = 8;
    m.serializationEfficiency = 1.0;
    return m;
}

ProtocolModel
ProtocolModel::restHttp1()
{
    ProtocolModel m;
    m.kind = ProtocolKind::RestHttp1;
    m.framingBytes = 700;
    m.serializeBaseCycles = 9000;
    m.deserializeBaseCycles = 12000;
    m.perByteCycles = 0.6;
    m.connectionBlocking = true;
    m.connectionsPerPair = 8;
    m.serializationEfficiency = 0.7;
    return m;
}

} // namespace uqsim::rpc
