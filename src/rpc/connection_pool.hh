/**
 * @file
 * Connection pool with HTTP/1.1 one-outstanding-request semantics.
 *
 * Each caller-instance -> callee-service pair owns a pool. For
 * multiplexed protocols (Thrift, gRPC/HTTP2) acquisition always
 * succeeds immediately. For blocking protocols, at most
 * connectionsPerPair requests may be outstanding; further callers
 * queue FIFO until a connection frees. This queue is the backpressure
 * channel of Fig 17B: a slow callee parks the caller's worker threads
 * here, making the caller *appear* saturated while its CPU idles.
 */

#ifndef UQSIM_RPC_CONNECTION_POOL_HH
#define UQSIM_RPC_CONNECTION_POOL_HH

#include <cstdint>
#include <deque>
#include <functional>

namespace uqsim {
class Counter;
}

namespace uqsim::rpc {

/**
 * FIFO-granting connection pool.
 */
class ConnectionPool
{
  public:
    /**
     * @param max_connections pool size (ignored when !blocking)
     * @param blocking        one outstanding request per connection
     * @param blocked         optional aggregate blocked-acquire counter
     *                        (e.g. the app's "rpc.pool.blocked_acquires"
     *                        registry metric) shared across pools
     */
    ConnectionPool(unsigned max_connections, bool blocking,
                   Counter *blocked = nullptr);

    /**
     * Identifies a parked acquire so it can be cancelled (e.g. by an
     * acquire-timeout). 0 means "granted synchronously, nothing to
     * cancel".
     */
    using Ticket = std::uint64_t;
    static constexpr Ticket kGrantedImmediately = 0;

    /**
     * Request a connection; @p granted runs immediately if one is
     * free (or the pool is non-blocking), otherwise when released.
     * @return kGrantedImmediately if @p granted already ran, else a
     *         ticket for cancel().
     */
    Ticket acquire(std::function<void()> granted);

    /**
     * Abandon a parked acquire. @return true if the waiter was still
     * parked (its callback will never run); false if it was already
     * granted or cancelled.
     */
    bool cancel(Ticket ticket);

    /** Return a connection; may synchronously grant a waiter. */
    void release();

    /** Connections currently handed out (blocking pools only). */
    unsigned inUse() const { return inUse_; }

    /** Callers waiting for a connection. */
    std::size_t waiting() const { return waiters_.size(); }

    /** Peak simultaneous waiters since construction. */
    std::size_t peakWaiting() const { return peakWaiting_; }

    /** Total acquisitions that had to wait. */
    std::uint64_t blockedAcquires() const { return blockedAcquires_; }

  private:
    struct Waiter
    {
        Ticket ticket = 0;
        std::function<void()> granted;
    };

    unsigned maxConnections_;
    bool blocking_;
    Counter *blockedMetric_ = nullptr;
    unsigned inUse_ = 0;
    std::deque<Waiter> waiters_;
    Ticket nextTicket_ = 1;
    std::size_t peakWaiting_ = 0;
    std::uint64_t blockedAcquires_ = 0;
};

} // namespace uqsim::rpc

#endif // UQSIM_RPC_CONNECTION_POOL_HH
